"""Phases, registry, refinement flow and metrics."""

import numpy as np
import pytest

from repro.core import (
    CpuTimeReport,
    ModelRegistry,
    Phase,
    RefinementFlow,
    compare_ber,
    compare_ranging,
)
from repro.uwb.fastsim import BerResult
from repro.uwb.ranging import RangingResult


class TestPhase:
    def test_ordering(self):
        assert Phase.I < Phase.II < Phase.III < Phase.IV

    def test_descriptions(self):
        for phase in Phase:
            assert phase.description
        assert str(Phase.III) == "Phase III"

    def test_from_int(self):
        assert Phase(3) is Phase.III


class TestRegistry:
    def test_register_and_create(self):
        reg = ModelRegistry()
        reg.register("integ", Phase.II, lambda: "ideal-impl")
        assert reg.create("integ", 2) == "ideal-impl"
        assert reg.phases_of("integ") == [Phase.II]
        assert ("integ", Phase.II) in reg
        assert len(reg) == 1

    def test_duplicate_rejected(self):
        reg = ModelRegistry()
        reg.register("integ", Phase.II, lambda: 1)
        with pytest.raises(KeyError):
            reg.register("integ", Phase.II, lambda: 2)

    def test_missing_binding_message(self):
        reg = ModelRegistry()
        reg.register("integ", Phase.II, lambda: 1)
        with pytest.raises(KeyError, match="Phase II"):
            reg.create("integ", Phase.III)

    def test_interface_check_runs(self):
        def check(block, impl):
            if not hasattr(impl, "window_outputs"):
                raise TypeError(f"{block}: not an integrator")

        reg = ModelRegistry(interface_check=check)
        with pytest.raises(TypeError):
            reg.register("integ", Phase.II, lambda: object())

    def test_describe(self):
        reg = ModelRegistry()
        reg.register("integ", Phase.II, lambda: 1, description="ideal")
        assert "integ" in reg.describe()


class TestRefinementFlow:
    def _flow(self):
        def testbench(impls):
            return sum(impls.values())

        flow = RefinementFlow(testbench)
        flow.register("a", Phase.II, lambda: 1)
        flow.register("a", Phase.III, lambda: 100)
        flow.register("b", Phase.II, lambda: 10)
        return flow

    def test_baseline_run(self):
        flow = self._flow()
        outcome = flow.run(baseline_phase=Phase.II)
        assert outcome.result == 11
        assert outcome.phase_map == {"a": Phase.II, "b": Phase.II}
        assert outcome.cpu_time >= 0
        assert "a@II" in outcome.label()

    def test_substitute_and_play(self):
        flow = self._flow()
        outcome = flow.run(refine={"a": Phase.III})
        assert outcome.result == 110
        assert outcome.phase_map["a"] == Phase.III
        assert outcome.phase_map["b"] == Phase.II  # untouched

    def test_fallback_to_available_phase(self):
        """Blocks without a refined binding keep their best phase at or
        below the request."""
        flow = self._flow()
        outcome = flow.run(baseline_phase=Phase.IV)
        assert outcome.phase_map["b"] == Phase.II

    def test_sweep_block(self):
        flow = self._flow()
        outcomes = flow.sweep_block("a")
        assert [o.phase_map["a"] for o in outcomes] == [Phase.II,
                                                        Phase.III]
        assert len(flow.history) == 2

    def test_missing_low_phase_raises(self):
        def testbench(impls):
            return 0

        flow = RefinementFlow(testbench)
        flow.register("a", Phase.IV, lambda: 1)
        with pytest.raises(KeyError):
            flow.run(baseline_phase=Phase.II)


class TestMetrics:
    def test_cpu_report(self):
        rep = CpuTimeReport(simulated_time=30e-6)
        rep.add("ELDO", 3573.0)
        rep.add("VHDL-AMS", 1237.0)
        rep.add("IDEAL", 551.0)
        assert rep.ratio("ELDO", "IDEAL") == pytest.approx(6.48, abs=0.01)
        table = rep.format_table()
        assert "ELDO" in table and "59 m" in table
        assert CpuTimeReport(1e-6).format_table() == "(no entries)"

    def test_ber_comparison(self):
        grid = np.array([0.0, 10.0])
        a = BerResult(grid, np.array([0.1, 0.01]),
                      np.array([10, 10]), np.array([100, 1000]),
                      label="ideal")
        b = BerResult(grid, np.array([0.1, 0.005]),
                      np.array([10, 5]), np.array([100, 1000]),
                      label="circuit")
        cmp_ = compare_ber(a, b)
        assert cmp_.wins_at_high_snr() == "circuit"
        assert cmp_.log10_max_gap == pytest.approx(np.log10(2.0))
        assert "circuit" in cmp_.format_table()

    def test_ber_grid_mismatch(self):
        a = BerResult(np.array([0.0]), np.array([0.1]),
                      np.array([1]), np.array([10]))
        b = BerResult(np.array([1.0]), np.array([0.1]),
                      np.array([1]), np.array([10]))
        with pytest.raises(ValueError):
            compare_ber(a, b)

    def test_ranging_comparison(self):
        ideal = RangingResult(np.array([10.0, 10.2, 9.9]), 9.9)
        circ = RangingResult(np.array([11.1, 11.2, 11.15]), 9.9)
        cmp_ = compare_ranging(ideal=ideal, circuit=circ)
        assert cmp_.offset_increased("ideal", "circuit")
        assert cmp_.variance_decreased("ideal", "circuit")
        assert "circuit" in cmp_.format_table()

    def test_ranging_result_stats(self):
        res = RangingResult(np.array([10.0, 11.0]), 9.9)
        assert res.mean == pytest.approx(10.5)
        assert res.variance == pytest.approx(0.5)
        assert res.offset == pytest.approx(0.6)
        single = RangingResult(np.array([10.0]), 9.9)
        assert single.variance == 0.0
