"""Codec + stable hashing (repro.core.serialization)."""

import dataclasses
import json

import numpy as np
import pytest

from repro.core.phases import Phase
from repro.core.serialization import (
    UnserializableError,
    callable_spec,
    canonical_json,
    from_jsonable,
    resolve_callable,
    stable_hash,
    to_jsonable,
)
from repro.link import ChannelSpec, FrontEndSpec, LinkSpec
from repro.uwb.bpf import BandPassFilter
from repro.uwb.config import TEST_CONFIG, UwbConfig
from repro.uwb.fastsim import BerResult
from repro.uwb.integrator import (
    CircuitSurrogateIntegrator,
    IdealIntegrator,
    SoftLimiter,
)
from repro.uwb.modulation import random_bits


def roundtrip(value, arrays=None):
    encoded = to_jsonable(value, arrays)
    json.dumps(encoded)  # must be pure JSON
    return from_jsonable(encoded, arrays)


class TestScalarsAndContainers:
    def test_primitives(self):
        for v in (None, True, False, 3, -1, 2.5, "x", ""):
            assert roundtrip(v) == v

    def test_tuple_list_set_dict(self):
        v = {"a": (1, 2.0, "x"), "b": [1, [2, (3,)]], "c": {4, 5}}
        back = roundtrip(v)
        assert back == v
        assert isinstance(back["a"], tuple)
        assert isinstance(back["a"][2], str)
        assert isinstance(back["c"], set)

    def test_complex_and_bytes(self):
        assert roundtrip(1 + 2j) == 1 + 2j
        assert roundtrip(b"\x00\xff") == b"\x00\xff"

    def test_non_string_dict_keys(self):
        v = {1: "a", (2, 3): "b"}
        back = roundtrip(v)
        assert back == v

    def test_dict_keys_colliding_with_tags(self):
        v = {"__tuple__": [1, 2], "__pickle__": "x"}
        assert roundtrip(v) == v

    def test_numpy_scalars_decay(self):
        assert roundtrip(np.float64(1.5)) == 1.5
        assert roundtrip(np.int64(7)) == 7


class TestArrays:
    def test_inline_roundtrip_preserves_dtype_shape(self):
        for arr in (np.arange(6.0).reshape(2, 3),
                    np.array([1, -2, 3], dtype=np.int64),
                    np.zeros(0),
                    np.array([[True, False]])):
            back = roundtrip(arr)
            assert np.array_equal(back, arr)
            assert back.dtype == arr.dtype and back.shape == arr.shape

    def test_external_arrays_collected(self):
        arrays = {}
        v = {"x": np.arange(4), "y": [np.ones(2)]}
        encoded = to_jsonable(v, arrays)
        assert len(arrays) == 2
        assert "data" not in json.dumps(encoded)  # refs only
        back = from_jsonable(encoded, arrays)
        assert np.array_equal(back["x"], v["x"])
        assert np.array_equal(back["y"][0], v["y"][0])

    def test_external_ref_without_table_raises(self):
        arrays = {}
        encoded = to_jsonable(np.arange(3), arrays)
        with pytest.raises(ValueError):
            from_jsonable(encoded, None)


class TestDataclassesAndObjects:
    def test_frozen_dataclass(self):
        cfg = UwbConfig(fs=8e9, symbol_period=16e-9)
        back = roundtrip(cfg)
        assert back == cfg

    def test_dataclass_with_arrays(self):
        res = BerResult(ebn0_db=np.array([4.0]), ber=np.array([0.1]),
                        errors=np.array([10]), bits=np.array([100]),
                        label="x", ci_low=np.array([0.05]),
                        ci_high=np.array([0.2]))
        back = roundtrip(res)
        assert isinstance(back, BerResult)
        assert back.label == "x"
        assert np.array_equal(back.ci_high, res.ci_high)

    def test_missing_field_gets_default(self):
        """Payloads written before a field existed decode with the
        field's default."""
        encoded = to_jsonable(BerResult(
            ebn0_db=np.zeros(1), ber=np.zeros(1),
            errors=np.zeros(1, dtype=int), bits=np.ones(1, dtype=int)))
        del encoded["fields"]["ci_low"]
        back = from_jsonable(encoded)
        assert back.ci_low is None

    def test_pickle_fallback_objects(self):
        bpf = BandPassFilter((2e9, 9e9), 20e9)
        back = roundtrip(bpf)
        assert isinstance(back, BandPassFilter)
        assert back.band == bpf.band
        assert np.array_equal(back.sos, bpf.sos)

    def test_callable_instances_keep_state(self):
        lim = SoftLimiter(0.1)
        back = roundtrip(lim)
        assert isinstance(back, SoftLimiter) and back.scale == 0.1

    def test_seed_sequence(self):
        ss = np.random.SeedSequence(42).spawn(3)[2]
        back = roundtrip(ss)
        assert back.entropy == ss.entropy
        assert back.spawn_key == ss.spawn_key
        a = np.random.default_rng(ss).integers(1 << 30)
        b = np.random.default_rng(back).integers(1 << 30)
        assert a == b


class TestCallables:
    def test_function_by_import_path(self):
        spec = callable_spec(random_bits)
        assert spec == "repro.uwb.modulation:random_bits"
        assert resolve_callable(spec) is random_bits
        assert roundtrip(random_bits) is random_bits

    def test_class_by_import_path(self):
        assert roundtrip(IdealIntegrator) is IdealIntegrator

    def test_lambda_rejected(self):
        with pytest.raises(UnserializableError):
            to_jsonable(lambda x: x)


class TestEnums:
    def test_intenum_keeps_type(self):
        """An IntEnum must not decay to a plain int - a decoded Phase
        selection has to compare and str() like a Phase."""
        back = roundtrip(Phase.III)
        assert back is Phase.III
        assert str(back) == "Phase III"

    def test_enum_inside_containers_and_dataclasses(self):
        v = {"phases": [Phase.I, Phase.IV], "pick": Phase.II}
        back = roundtrip(v)
        assert back == v and back["pick"] is Phase.II

    def test_enum_hash_distinct_from_raw_value(self):
        assert stable_hash(Phase.II) != stable_hash(2)


def _spec_variants() -> list[LinkSpec]:
    """A property-style sample of the LinkSpec space: every layer and
    option exercised at least once."""
    return [
        LinkSpec(),
        LinkSpec(config=TEST_CONFIG, integrator="two_pole"),
        LinkSpec(integrator="circuit", phase=Phase.III),
        LinkSpec(integrator="two_pole",
                 integrator_params={"fp2_hz": 3e9, "gain": 4.0}),
        LinkSpec(channel=ChannelSpec(kind="cm1", distance=3.3,
                                     realization_seed=7)),
        LinkSpec(frontend=FrontEndSpec(band=(2e9, 9e9),
                                       squarer_drive=0.35,
                                       adc="config", agc="two_stage",
                                       agc_amp_target=0.06,
                                       detection_factor=8.0,
                                       toa_threshold_fraction=0.5)),
        LinkSpec(config=TEST_CONFIG,
                 channel=ChannelSpec(kind="cm1", distance=9.9),
                 frontend=FrontEndSpec(adc="none", bpf_order=2,
                                       t_dump=1e-9, t_hold=1e-9),
                 integrator="surrogate"),
    ]


class TestLinkSpecRoundTrip:
    """Campaign cache keys are built from specs; the codec must carry
    them losslessly (the serialization satellite of the front-door
    redesign)."""

    @pytest.mark.parametrize("spec", _spec_variants(),
                             ids=lambda s: s.key()[:8])
    def test_codec_roundtrip_is_lossless(self, spec):
        back = roundtrip(spec)
        assert isinstance(back, LinkSpec)
        assert back == spec
        assert hash(back) == hash(spec)

    @pytest.mark.parametrize("spec", _spec_variants(),
                             ids=lambda s: s.key()[:8])
    def test_json_roundtrip_preserves_key(self, spec):
        back = LinkSpec.from_json(spec.to_json())
        assert back == spec
        assert back.key() == spec.key()

    def test_keys_pairwise_distinct(self):
        keys = [s.key() for s in _spec_variants()]
        assert len(set(keys)) == len(keys)

    def test_decoded_spec_still_resolves(self):
        from repro.link import resolve_integrator
        from repro.uwb.integrator import TwoPoleIntegrator

        spec = LinkSpec(integrator="two_pole",
                        integrator_params={"fp2_hz": 3e9})
        back = roundtrip(spec)
        model = resolve_integrator(back.integrator,
                                   params=back.integrator_params)
        assert isinstance(model, TwoPoleIntegrator)
        assert model.fp2_hz == 3e9


class TestStableHash:
    def test_deterministic_and_key_order_insensitive(self):
        a = {"x": 1, "y": np.arange(3), "z": UwbConfig()}
        b = {"z": UwbConfig(), "y": np.arange(3), "x": 1}
        assert stable_hash(a) == stable_hash(b)

    def test_sensitive_to_content(self):
        base = dict(config=UwbConfig(), seed=7)
        assert stable_hash(base) != stable_hash(dict(base, seed=8))
        assert stable_hash(base) != stable_hash(
            dict(base, config=UwbConfig(fs=8e9, symbol_period=16e-9)))

    def test_array_content_hashes(self):
        assert stable_hash(np.arange(4)) != stable_hash(np.arange(5))
        assert stable_hash(np.arange(4)) == stable_hash(np.arange(4))
        # dtype matters
        assert stable_hash(np.arange(4, dtype=np.int64)) != stable_hash(
            np.arange(4, dtype=np.float64))

    def test_model_hash_independent_of_use(self):
        """Running a model must not move its content address (lazy
        caches are excluded from the pickled state)."""
        fresh = CircuitSurrogateIntegrator()
        used = CircuitSurrogateIntegrator()
        used.window_outputs(np.ones((2, 8)), 1e-10)
        assert stable_hash(fresh) == stable_hash(used)

    def test_canonical_json_is_json(self):
        text = canonical_json({"a": (1, np.arange(2))})
        json.loads(text)
