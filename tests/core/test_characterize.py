"""Phase-IV extraction: two-pole fit and nonlinearity measurement."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.characterize import (
    TwoPoleFit,
    build_surrogate,
    extract_nonlinearity,
    fit_two_pole,
)
from repro.uwb.integrator import CircuitSurrogateIntegrator


def synth_two_pole(gain, fp1, fp2, freqs):
    return (20 * np.log10(gain)
            - 10 * np.log10(1 + (freqs / fp1) ** 2)
            - 10 * np.log10(1 + (freqs / fp2) ** 2))


class TestFit:
    def test_recovers_synthetic(self):
        freqs = np.logspace(2, 11, 120)
        mag = synth_two_pole(12.3, 0.886e6, 5.895e9, freqs)
        fit = fit_two_pole(freqs, mag)
        assert fit.gain == pytest.approx(12.3, rel=1e-3)
        assert fit.fp1_hz == pytest.approx(0.886e6, rel=1e-2)
        assert fit.fp2_hz == pytest.approx(5.895e9, rel=1e-2)
        assert fit.rms_error_db < 1e-3
        assert fit.gain_db == pytest.approx(21.8, abs=0.1)

    @given(gain=st.floats(2.0, 50.0),
           fp1=st.floats(1e5, 1e7),
           ratio=st.floats(1e2, 1e4))
    @settings(max_examples=15, deadline=None)
    def test_recovers_random_parameters(self, gain, fp1, ratio):
        fp2 = fp1 * ratio
        freqs = np.logspace(2, 11, 100)
        mag = synth_two_pole(gain, fp1, fp2, freqs)
        fit = fit_two_pole(freqs, mag)
        assert fit.gain == pytest.approx(gain, rel=0.05)
        assert fit.fp1_hz == pytest.approx(fp1, rel=0.1)

    def test_poles_ordered(self):
        freqs = np.logspace(2, 11, 80)
        mag = synth_two_pole(10.0, 1e6, 1e9, freqs)
        fit = fit_two_pole(freqs, mag)
        assert fit.fp1_hz <= fit.fp2_hz

    def test_magnitude_model(self):
        fit = TwoPoleFit(gain=10.0, fp1_hz=1e6, fp2_hz=1e9,
                         rms_error_db=0.0)
        mags = fit.magnitude_db([1e3, 1e6])
        assert mags[0] == pytest.approx(20.0, abs=0.01)
        assert mags[1] == pytest.approx(17.0, abs=0.05)

    def test_to_model(self):
        fit = TwoPoleFit(gain=10.0, fp1_hz=1e6, fp2_hz=1e9,
                         rms_error_db=0.0)
        model = fit.to_model()
        assert model.gain == 10.0
        assert model.fp1_hz == 1e6

    def test_input_validation(self):
        with pytest.raises(ValueError):
            fit_two_pole([1.0, 2.0], [0.0, 0.0])


class TestCircuitExtraction:
    def test_nonlinearity_shape(self, id_design):
        vin, f_of_vin, gain0 = extract_nonlinearity(id_design,
                                                    v_max=0.2, points=17)
        assert gain0 > 5.0
        # odd-ish characteristic through the origin
        mid = len(vin) // 2
        assert abs(f_of_vin[mid]) < 5e-3
        # monotone
        assert np.all(np.diff(f_of_vin) > 0)

    def test_build_surrogate(self, id_design):
        surrogate = build_surrogate(id_design)
        assert isinstance(surrogate, CircuitSurrogateIntegrator)
        # carries the measured fit
        assert 0.4e6 < surrogate.fp1_hz < 2e6
        assert 15 < 20 * np.log10(surrogate.gain) < 25
        # measured nonlinearity compresses large inputs
        x = np.full((1, 40), 0.3)
        small = np.full((1, 40), 0.01)
        dt = 0.05e-9
        gain_large = surrogate.window_outputs(x, dt)[0] / 0.3
        gain_small = surrogate.window_outputs(small, dt)[0] / 0.01
        assert gain_large < 0.7 * gain_small
