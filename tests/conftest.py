"""Shared fixtures: fast configurations and session-cached circuit data."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import default_design
from repro.core.characterize import characterize_integrator
from repro.uwb.config import UwbConfig


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def fast_config() -> UwbConfig:
    """A light link configuration for unit tests."""
    return UwbConfig(fs=8e9, symbol_period=16e-9, pulse_tau=0.225e-9,
                     pulse_order=5, integration_window=2e-9,
                     preamble_symbols=8, payload_bits=16)


@pytest.fixture(scope="session")
def id_design():
    return default_design()


@pytest.fixture(scope="session")
def id_characterization(id_design):
    """Cached (fit, freqs, mag_db) of the default I&D circuit."""
    return characterize_integrator(id_design)
