"""Spice co-simulation block inside the AMS kernel."""

import math

import pytest

from repro.ams import CallbackBlock, Simulator, SpiceBlock
from repro.spice import Capacitor, Circuit, Resistor, VoltageSource


def rc_circuit(r=1e3, c=1e-12) -> Circuit:
    ckt = Circuit("rc")
    ckt.add(VoltageSource("vin", "in", "0", dc=0.0),
            Resistor("r1", "in", "out", r),
            Capacitor("c1", "out", "0", c))
    return ckt


class TestSpiceBlock:
    def test_tracks_input_quantity(self):
        sim = Simulator(dt=1e-11)
        drive = sim.quantity("drive", init=0.0)
        out = sim.quantity("out")
        sim.add_block(CallbackBlock("src", lambda: 1.0,
                                    inputs=[], outputs=[drive]))
        sim.add_block(SpiceBlock(
            "rc", rc_circuit(), sim.dt,
            inputs={"vin": lambda: drive.value},
            outputs={out: lambda st: st.v("out")}))
        sim.run(10e-9)  # 10 tau
        assert out.value == pytest.approx(1.0, abs=1e-3)

    def test_substeps(self):
        sim = Simulator(dt=4e-11)
        drive = sim.quantity("drive", init=1.0)
        out = sim.quantity("out")
        block = SpiceBlock(
            "rc", rc_circuit(), sim.dt,
            inputs={"vin": lambda: drive.value},
            outputs={out: lambda st: st.v("out")},
            substeps=4)
        sim.add_block(block)
        sim.run(8e-9)
        assert block.stepper.steps_taken == sim.steps * 4
        assert out.value == pytest.approx(1.0, abs=1e-3)

    def test_initial_dc_solution_exported(self):
        sim = Simulator(dt=1e-11)
        drive = sim.quantity("drive", init=0.7)
        out = sim.quantity("out")
        SpiceBlock("rc", rc_circuit(), sim.dt,
                   inputs={"vin": lambda: drive.value},
                   outputs={out: lambda st: st.v("out")})
        # DC operating point with vin = 0.7 -> out = 0.7 already at t=0
        assert out.value == pytest.approx(0.7, abs=1e-6)

    def test_substep_validation(self):
        sim = Simulator(dt=1e-11)
        out = sim.quantity("out")
        with pytest.raises(ValueError):
            SpiceBlock("rc", rc_circuit(), sim.dt,
                       inputs={"vin": lambda: 0.0},
                       outputs={out: lambda st: st.v("out")},
                       substeps=0)

    def test_dynamic_input_follows_sine(self):
        sim = Simulator(dt=1e-11)
        drive = sim.quantity("drive", init=0.0)
        out = sim.quantity("out")
        freq = 1e8  # well below RC pole at 159 MHz -> passes with
        # moderate attenuation

        sim.add_block(CallbackBlock(
            "src", lambda: math.sin(2 * math.pi * freq * sim.t),
            inputs=[], outputs=[drive]))
        sim.add_block(SpiceBlock(
            "rc", rc_circuit(), sim.dt,
            inputs={"vin": lambda: drive.value},
            outputs={out: lambda st: st.v("out")}))
        sim.run(30e-9)
        expected_mag = 1.0 / math.sqrt(1 + (freq / 1.59e8) ** 2)
        # after settling, the output swings with roughly that amplitude
        peak = 0.0
        for _ in range(1000):
            sim.run_steps(1)
            peak = max(peak, abs(out.value))
        assert peak == pytest.approx(expected_mag, rel=0.1)


class TestPreflight:
    """The static lint gate in front of the embedded circuit engine."""

    def _broken_rc(self) -> Circuit:
        # 'out' reaches ground only through capacitors: gmin leakage
        # can still solve this numerically, but it is a netlist bug.
        ckt = Circuit("rc broken")
        ckt.add(VoltageSource("vin", "in", "0", dc=0.0),
                Capacitor("cs", "in", "out", 1e-12),
                Capacitor("c1", "out", "0", 1e-12))
        return ckt

    def _make_block(self, circuit, **kwargs):
        sim = Simulator(dt=1e-11)
        out = sim.quantity("out")
        return SpiceBlock("uut", circuit, sim.dt,
                          inputs={"vin": lambda: 0.0},
                          outputs={out: lambda st: st.v("out")},
                          **kwargs)

    def test_rejects_broken_circuit_naming_rule_and_nodes(self):
        from repro.spice import NetlistLintError

        with pytest.raises(NetlistLintError, match="SP-DCPATH-001") as exc:
            self._make_block(self._broken_rc())
        assert "out" in str(exc.value)
        assert exc.value.report is not None

    def test_rejects_before_any_mna_assembly(self):
        # A current-source cutset would otherwise surface much later as
        # an opaque singular-matrix error inside the Newton loop.
        from repro.spice import CurrentSource, NetlistLintError

        ckt = rc_circuit()
        ckt.add(CurrentSource("i1", "out", "iso", dc=1e-3),
                Capacitor("ciso", "iso", "0", 1e-12))
        with pytest.raises(NetlistLintError, match="SP-"):
            self._make_block(ckt)

    def test_opt_out_still_simulates(self):
        # preflight=False: the gmin-leakage path solves the degenerate
        # netlist, as before the gate existed.
        block = self._make_block(self._broken_rc(), preflight=False)
        for _ in range(10):
            block.step(0.0, 1e-11)
        assert math.isfinite(block.v("out"))

    def test_clean_circuit_unaffected(self):
        block = self._make_block(rc_circuit())
        assert block.stepper.steps_taken == 0
