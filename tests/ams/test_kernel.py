"""Mixed-signal kernel: signals, processes, scheduling, blocks."""

import math

import numpy as np
import pytest

from repro.ams import (
    AnalogBlock,
    CallbackBlock,
    Process,
    Quantity,
    Recorder,
    Signal,
    Simulator,
)


class TestSignals:
    def test_assign_is_delta_delayed(self):
        sim = Simulator(dt=1e-9)
        s = sim.signal("s", init=0)
        s.assign(1)
        assert s.value == 0  # not yet applied
        sim.initialize()
        assert s.value == 1

    def test_assign_after_delay(self):
        sim = Simulator(dt=1e-9)
        s = sim.signal("s", init=0)
        s.assign(1, after=5e-9)
        sim.run(3e-9)
        assert s.value == 0
        sim.run(6e-9)
        assert s.value == 1

    def test_watchers_fire_on_change_only(self):
        sim = Simulator(dt=1e-9)
        s = sim.signal("s", init=0)
        hits = []
        s.watch(lambda sig: hits.append(sig.value))
        s.assign(0)  # no change
        s.assign(1)
        sim.initialize()
        assert hits == [1]

    def test_unbound_signal_rejects_assign(self):
        s = Signal("lonely")
        with pytest.raises(RuntimeError):
            s.assign(1)

    def test_signal_registry_returns_same(self):
        sim = Simulator(dt=1e-9)
        assert sim.signal("a") is sim.signal("a")


class TestProcesses:
    def test_sensitivity_triggers(self):
        sim = Simulator(dt=1e-9)
        clk = sim.signal("clk", init=0)
        count = []
        sim.add_process(Process("p", lambda s: count.append(s.t),
                                sensitivity=[clk]))
        sim.every(2e-9, lambda s: clk.assign(1 - clk.value))
        sim.run(10e-9)
        # ticks at 0, 2, 4, 6, 8 and 10 ns -> six toggles
        assert len(count) == 6

    def test_every_period_validation(self):
        sim = Simulator(dt=1e-9)
        with pytest.raises(ValueError):
            sim.every(0.0, lambda s: None)

    def test_schedule_order(self):
        sim = Simulator(dt=1e-9)
        order = []
        sim.schedule(2e-9, lambda: order.append("b"))
        sim.schedule(1e-9, lambda: order.append("a"))
        sim.schedule(2e-9, lambda: order.append("c"))
        sim.run(3e-9)
        assert order == ["a", "b", "c"]

    def test_schedule_past_rejected(self):
        sim = Simulator(dt=1e-9)
        with pytest.raises(ValueError):
            sim.schedule(-1e-9, lambda: None)


class TestBlocks:
    def test_single_driver_enforced(self):
        sim = Simulator(dt=1e-9)
        q = sim.quantity("q")
        CallbackBlock("a", lambda: 1.0, inputs=[], outputs=[q])
        with pytest.raises(RuntimeError):
            CallbackBlock("b", lambda: 2.0, inputs=[], outputs=[q])

    def test_callback_chain(self):
        sim = Simulator(dt=1e-9)
        a = sim.quantity("a", init=2.0)
        b = sim.quantity("b")
        c = sim.quantity("c")
        sim.add_block(CallbackBlock("sq", lambda v: v * v,
                                    inputs=[a], outputs=[b]))
        sim.add_block(CallbackBlock("neg", lambda v: -v,
                                    inputs=[b], outputs=[c]))
        sim.run_steps(1)
        assert c.value == -4.0

    def test_multi_output_callback(self):
        sim = Simulator(dt=1e-9)
        a = sim.quantity("a", init=3.0)
        b = sim.quantity("b")
        c = sim.quantity("c")
        sim.add_block(CallbackBlock("split", lambda v: (v + 1, v - 1),
                                    inputs=[a], outputs=[b, c]))
        sim.run_steps(1)
        assert (b.value, c.value) == (4.0, 2.0)

    def test_steps_and_time(self):
        sim = Simulator(dt=1e-9)
        sim.run(10e-9)
        assert sim.steps == 10
        assert sim.t == pytest.approx(10e-9)

    def test_dt_validation(self):
        with pytest.raises(ValueError):
            Simulator(dt=0.0)

    def test_cpu_time_accumulates(self):
        sim = Simulator(dt=1e-9)
        sim.run(100e-9)
        assert sim.cpu_time > 0


class TestReset:
    """The reset contract: back-to-back runs are reproducible."""

    def _integrating_bench(self):
        sim = Simulator(dt=1e-9)
        src = sim.quantity("src", init=1.0)
        acc = sim.quantity("acc")

        class Accumulator(AnalogBlock):
            def __init__(self, name, vin, vout):
                super().__init__(name, inputs=[vin], outputs=[vout])
                self.total = 0.0

            def step(self, t, dt):
                self.total += self.inputs[0].value
                self.outputs[0].value = self.total

            def reset(self):
                self.total = 0.0

        sim.add_block(Accumulator("acc", src, acc))
        return sim, src, acc

    def test_reset_restores_quantities_and_signals(self):
        sim, src, acc = self._integrating_bench()
        gate = sim.signal("gate", init=0)
        sim.schedule(2e-9, lambda: gate.assign(1))
        sim.run_steps(5)
        assert acc.value == 5.0 and gate.value == 1
        sim.reset()
        assert sim.t == 0.0 and sim.steps == 0 and sim.cpu_time == 0.0
        assert acc.value == 0.0 and src.value == 1.0
        assert gate.value == 0 and gate.last_change == 0.0

    def test_back_to_back_runs_identical(self):
        sim, src, acc = self._integrating_bench()
        counts = []
        sim.every(2e-9, lambda s: counts.append(s.t), start=2e-9)
        sim.run_steps(6)
        first = (acc.value, list(counts))
        sim.reset()
        counts.clear()
        sim.run_steps(6)
        assert (acc.value, list(counts)) == first

    def test_reset_rearms_build_time_schedule_and_assign(self):
        sim = Simulator(dt=1e-9)
        s = sim.signal("s", init=0)
        s.assign(3, after=2e-9)
        fired = []
        sim.schedule(4e-9, lambda: fired.append(sim.t))
        sim.run_steps(6)
        assert s.value == 3 and fired == [4e-9]
        sim.reset()
        assert s.value == 0
        sim.run_steps(6)
        assert s.value == 3 and fired == [4e-9, 4e-9]

    def test_runtime_events_not_rearmed(self):
        """Events scheduled after the run started are one-shot: reset
        replays only the testbench construction."""
        sim = Simulator(dt=1e-9)
        fired = []
        sim.initialize()  # ends the build phase
        sim.schedule(2e-9, lambda: fired.append("runtime"))
        sim.run_steps(4)
        assert fired == ["runtime"]
        sim.reset()
        sim.run_steps(4)
        assert fired == ["runtime"]

    def test_reset_clears_recorders(self):
        """A decimated recorder restarts its phase and discards old
        samples on reset, so a rerun records exactly what a fresh run
        would."""
        sim = Simulator(dt=1e-9)
        q = sim.quantity("q", init=1.0)
        sim.add_block(CallbackBlock("id", lambda v: v, inputs=[q],
                                    outputs=[sim.quantity("q2")]))
        rec = Recorder(sim, [q], decimate=4)
        sim.run_steps(6)
        first = list(rec.t)
        sim.reset()
        sim.run_steps(6)
        assert list(rec.t) == first == [pytest.approx(4e-9)]

    def test_ams_receiver_rerun_reproducible(self):
        import numpy as np

        from repro.uwb.config import UwbConfig
        from repro.uwb.modulation import ppm_waveform
        from repro.uwb.system import build_ams_receiver

        config = UwbConfig(fs=8e9, symbol_period=16e-9,
                           pulse_tau=0.225e-9, pulse_order=5,
                           integration_window=2e-9)
        bits = np.array([1, 0, 1, 1], dtype=np.int8)
        sig = ppm_waveform(bits, config, amplitude=0.1)
        sim, harvest = build_ams_receiver(config, "ideal", sig)
        t_stop = len(bits) * config.symbol_period
        sim.run(t_stop)
        first = harvest.result()
        sim.reset()  # also clears the harvest (on_reset wiring)
        sim.run(t_stop)
        second = harvest.result()
        assert len(second.bits) == len(bits)
        assert np.array_equal(first.bits, second.bits)
        assert np.array_equal(first.slot_values, second.slot_values)


class TestRecorderAndTrace:
    def test_recorder_samples_every_step(self):
        sim = Simulator(dt=1e-9)
        q = sim.quantity("q")
        sim.add_block(CallbackBlock("ramp", lambda: sim.t * 1e9,
                                    inputs=[], outputs=[q]))
        rec = Recorder(sim, [q])
        sim.run(5e-9)
        trace = rec.trace("q")
        assert len(trace) == 5
        # the block reads sim.t before the step commits, so the last
        # recorded value lags one step
        assert trace.values[-1] == pytest.approx(4.0)

    def test_decimation(self):
        sim = Simulator(dt=1e-9)
        q = sim.quantity("q", init=1.0)
        sim.add_block(CallbackBlock("id", lambda v: v, inputs=[q],
                                    outputs=[sim.quantity("q2")]))
        rec = Recorder(sim, [q], decimate=4)
        sim.run(16e-9)
        assert len(rec.t) == 4

    def test_trace_measurements(self):
        import numpy as np

        from repro.ams.waveform import Trace

        t = np.linspace(0.0, 1.0, 101)
        tr = Trace("sin", t, np.sin(2 * math.pi * t))
        downs = tr.crossings(0.0, rising=False)
        assert len(downs) == 1
        assert downs[0] == pytest.approx(0.5, abs=0.02)
        assert tr.maximum() == pytest.approx(1.0, abs=1e-3)
        assert tr.window(0.0, 0.5).maximum() == pytest.approx(1.0,
                                                              abs=1e-3)
        assert tr.rms() == pytest.approx(1 / math.sqrt(2), abs=0.01)

    def test_unknown_probe(self):
        sim = Simulator(dt=1e-9)
        q = sim.quantity("q")
        rec = Recorder(sim, [q])
        with pytest.raises(KeyError):
            rec.trace("nope")
