"""Mixed-signal kernel: signals, processes, scheduling, blocks."""

import math

import numpy as np
import pytest

from repro.ams import (
    AnalogBlock,
    CallbackBlock,
    Process,
    Quantity,
    Recorder,
    Signal,
    Simulator,
)


class TestSignals:
    def test_assign_is_delta_delayed(self):
        sim = Simulator(dt=1e-9)
        s = sim.signal("s", init=0)
        s.assign(1)
        assert s.value == 0  # not yet applied
        sim.initialize()
        assert s.value == 1

    def test_assign_after_delay(self):
        sim = Simulator(dt=1e-9)
        s = sim.signal("s", init=0)
        s.assign(1, after=5e-9)
        sim.run(3e-9)
        assert s.value == 0
        sim.run(6e-9)
        assert s.value == 1

    def test_watchers_fire_on_change_only(self):
        sim = Simulator(dt=1e-9)
        s = sim.signal("s", init=0)
        hits = []
        s.watch(lambda sig: hits.append(sig.value))
        s.assign(0)  # no change
        s.assign(1)
        sim.initialize()
        assert hits == [1]

    def test_unbound_signal_rejects_assign(self):
        s = Signal("lonely")
        with pytest.raises(RuntimeError):
            s.assign(1)

    def test_signal_registry_returns_same(self):
        sim = Simulator(dt=1e-9)
        assert sim.signal("a") is sim.signal("a")


class TestProcesses:
    def test_sensitivity_triggers(self):
        sim = Simulator(dt=1e-9)
        clk = sim.signal("clk", init=0)
        count = []
        sim.add_process(Process("p", lambda s: count.append(s.t),
                                sensitivity=[clk]))
        sim.every(2e-9, lambda s: clk.assign(1 - clk.value))
        sim.run(10e-9)
        # ticks at 0, 2, 4, 6, 8 and 10 ns -> six toggles
        assert len(count) == 6

    def test_every_period_validation(self):
        sim = Simulator(dt=1e-9)
        with pytest.raises(ValueError):
            sim.every(0.0, lambda s: None)

    def test_schedule_order(self):
        sim = Simulator(dt=1e-9)
        order = []
        sim.schedule(2e-9, lambda: order.append("b"))
        sim.schedule(1e-9, lambda: order.append("a"))
        sim.schedule(2e-9, lambda: order.append("c"))
        sim.run(3e-9)
        assert order == ["a", "b", "c"]

    def test_schedule_past_rejected(self):
        sim = Simulator(dt=1e-9)
        with pytest.raises(ValueError):
            sim.schedule(-1e-9, lambda: None)


class TestBlocks:
    def test_single_driver_enforced(self):
        sim = Simulator(dt=1e-9)
        q = sim.quantity("q")
        CallbackBlock("a", lambda: 1.0, inputs=[], outputs=[q])
        with pytest.raises(RuntimeError):
            CallbackBlock("b", lambda: 2.0, inputs=[], outputs=[q])

    def test_callback_chain(self):
        sim = Simulator(dt=1e-9)
        a = sim.quantity("a", init=2.0)
        b = sim.quantity("b")
        c = sim.quantity("c")
        sim.add_block(CallbackBlock("sq", lambda v: v * v,
                                    inputs=[a], outputs=[b]))
        sim.add_block(CallbackBlock("neg", lambda v: -v,
                                    inputs=[b], outputs=[c]))
        sim.run_steps(1)
        assert c.value == -4.0

    def test_multi_output_callback(self):
        sim = Simulator(dt=1e-9)
        a = sim.quantity("a", init=3.0)
        b = sim.quantity("b")
        c = sim.quantity("c")
        sim.add_block(CallbackBlock("split", lambda v: (v + 1, v - 1),
                                    inputs=[a], outputs=[b, c]))
        sim.run_steps(1)
        assert (b.value, c.value) == (4.0, 2.0)

    def test_steps_and_time(self):
        sim = Simulator(dt=1e-9)
        sim.run(10e-9)
        assert sim.steps == 10
        assert sim.t == pytest.approx(10e-9)

    def test_dt_validation(self):
        with pytest.raises(ValueError):
            Simulator(dt=0.0)

    def test_cpu_time_accumulates(self):
        sim = Simulator(dt=1e-9)
        sim.run(100e-9)
        assert sim.cpu_time > 0


class TestRecorderAndTrace:
    def test_recorder_samples_every_step(self):
        sim = Simulator(dt=1e-9)
        q = sim.quantity("q")
        sim.add_block(CallbackBlock("ramp", lambda: sim.t * 1e9,
                                    inputs=[], outputs=[q]))
        rec = Recorder(sim, [q])
        sim.run(5e-9)
        trace = rec.trace("q")
        assert len(trace) == 5
        # the block reads sim.t before the step commits, so the last
        # recorded value lags one step
        assert trace.values[-1] == pytest.approx(4.0)

    def test_decimation(self):
        sim = Simulator(dt=1e-9)
        q = sim.quantity("q", init=1.0)
        sim.add_block(CallbackBlock("id", lambda v: v, inputs=[q],
                                    outputs=[sim.quantity("q2")]))
        rec = Recorder(sim, [q], decimate=4)
        sim.run(16e-9)
        assert len(rec.t) == 4

    def test_trace_measurements(self):
        import numpy as np

        from repro.ams.waveform import Trace

        t = np.linspace(0.0, 1.0, 101)
        tr = Trace("sin", t, np.sin(2 * math.pi * t))
        downs = tr.crossings(0.0, rising=False)
        assert len(downs) == 1
        assert downs[0] == pytest.approx(0.5, abs=0.02)
        assert tr.maximum() == pytest.approx(1.0, abs=1e-3)
        assert tr.window(0.0, 0.5).maximum() == pytest.approx(1.0,
                                                              abs=1e-3)
        assert tr.rms() == pytest.approx(1 / math.sqrt(2), abs=0.01)

    def test_unknown_probe(self):
        sim = Simulator(dt=1e-9)
        q = sim.quantity("q")
        rec = Recorder(sim, [q])
        with pytest.raises(KeyError):
            rec.trace("nope")
