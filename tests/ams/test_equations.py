"""Behavioral ODE states against analytic responses."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ams.equations import (
    GatedIntegratorState,
    OnePoleState,
    TwoPoleGatedIntegratorState,
    saturate,
)


class TestSaturate:
    def test_clamps(self):
        assert saturate(5.0, -1.0, 1.0) == 1.0
        assert saturate(-5.0, -1.0, 1.0) == -1.0
        assert saturate(0.3, -1.0, 1.0) == 0.3


class TestOnePole:
    def test_step_response(self):
        pole = 1e6
        lp = OnePoleState(pole, gain=2.0)
        dt = 1e-9
        tau = 1.0 / (2 * math.pi * pole)
        steps = int(3 * tau / dt)
        y = 0.0
        for _ in range(steps):
            y = lp.update(1.0, dt)
        assert y == pytest.approx(2.0 * (1 - math.exp(-3.0)), rel=1e-2)

    def test_dc_gain(self):
        lp = OnePoleState(1e6, gain=3.0)
        for _ in range(10000):
            y = lp.update(0.5, 1e-8)
        assert y == pytest.approx(1.5, rel=1e-3)

    def test_reset(self):
        lp = OnePoleState(1e6)
        lp.update(1.0, 1e-9)
        lp.reset()
        assert lp.y == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            OnePoleState(0.0)

    @given(gain=st.floats(0.1, 10.0), x=st.floats(-1.0, 1.0))
    @settings(max_examples=20, deadline=None)
    def test_settles_to_gain_times_input(self, gain, x):
        lp = OnePoleState(1e6, gain=gain)
        for _ in range(5000):
            y = lp.update(x, 1e-8)
        assert y == pytest.approx(gain * x, rel=1e-3, abs=1e-9)


class TestGatedIntegrator:
    def test_constant_input_ramp(self):
        state = GatedIntegratorState(k=1e8)
        dt = 1e-9
        for _ in range(100):
            out = state.integrate(0.5, dt)
        assert out == pytest.approx(1e8 * 0.5 * 100e-9, rel=1e-2)

    def test_hold_freezes(self):
        state = GatedIntegratorState(k=1e8)
        state.integrate(1.0, 1e-9)
        held = state.hold()
        assert state.hold() == held

    def test_dump_resets(self):
        state = GatedIntegratorState(k=1e8)
        state.integrate(1.0, 1e-9)
        assert state.dump() == 0.0
        assert state.vo == 0.0


class TestTwoPoleGated:
    def test_matches_ideal_for_short_windows(self):
        """Integration windows << 1/fp1: the two-pole model tracks the
        equivalent ideal integrator within a few percent."""
        gain, fp1, fp2 = 12.3, 0.886e6, 5.895e9
        k = gain * 2 * math.pi * fp1
        two = TwoPoleGatedIntegratorState(gain, fp1, fp2)
        ideal = GatedIntegratorState(k)
        dt = 0.05e-9
        for _ in range(400):  # 20 ns window
            v2 = two.integrate(0.05, dt)
            v1 = ideal.integrate(0.05, dt)
        assert v2 == pytest.approx(v1, rel=0.1)

    def test_droop_for_long_windows(self):
        """Windows comparable to 1/fp1 droop below the ideal ramp."""
        gain, fp1 = 12.3, 0.886e6
        k = gain * 2 * math.pi * fp1
        two = TwoPoleGatedIntegratorState(gain, fp1, 5.9e9)
        ideal = GatedIntegratorState(k)
        dt = 1e-9
        for _ in range(400):  # 400 ns >> tau1 = 180 ns
            v2 = two.integrate(0.05, dt)
            v1 = ideal.integrate(0.05, dt)
        assert v2 < 0.8 * v1

    def test_dump_and_hold(self):
        two = TwoPoleGatedIntegratorState(12.3, 1e6, 1e9)
        two.integrate(0.1, 1e-9)
        held = two.hold()
        assert two.hold() == held
        assert two.dump() == 0.0

    def test_input_nonlinearity_applied(self):
        limited = TwoPoleGatedIntegratorState(
            12.3, 1e6, 1e9, input_nonlinearity=lambda v: min(v, 0.1))
        free = TwoPoleGatedIntegratorState(12.3, 1e6, 1e9)
        for _ in range(100):
            v_lim = limited.integrate(0.5, 1e-9)
            v_free = free.integrate(0.5, 1e-9)
        assert v_lim < 0.25 * v_free
