"""Execution engines: event semantics, equivalence, fallback rules."""

import numpy as np
import pytest

from repro.ams import (
    AnalogBlock,
    CallbackBlock,
    CompiledEngine,
    GatedIntegratorState,
    Recorder,
    ReferenceEngine,
    Simulator,
    get_engine,
)
from repro.link import LinkSpec, ops
from repro.uwb.bpf import BandPassFilter
from repro.uwb.config import UwbConfig
from repro.uwb.modulation import ppm_waveform

FAST = UwbConfig(fs=8e9, symbol_period=16e-9, pulse_tau=0.225e-9,
                 pulse_order=5, integration_window=2e-9)
SPEC = LinkSpec(config=FAST)


def run_receiver(integrator, sig, *, engine, record=False):
    """The mixed-signal receiver through the front door (the engine
    under test is the only thing that varies)."""
    return ops.run_testbench(SPEC, sig, engine=engine, record=record,
                             integrator=integrator)


def fig5_like_signal(bits):
    """The fig5-style stimulus: filtered, normalized 2-PPM burst."""
    bits = np.asarray(bits, dtype=np.int8)
    wave = ppm_waveform(bits, FAST, amplitude=1.0)
    bpf = BandPassFilter.for_pulse(FAST.fs, FAST.pulse_tau,
                                   FAST.pulse_order)
    sig = bpf(wave)
    return bits, 0.25 * sig / np.max(np.abs(sig))


class TestEngineResolution:
    def test_get_engine_by_name(self):
        assert isinstance(get_engine("reference"), ReferenceEngine)
        assert isinstance(get_engine("compiled"), CompiledEngine)

    def test_get_engine_passthrough_and_class(self):
        inst = CompiledEngine()
        assert get_engine(inst) is inst
        assert isinstance(get_engine(ReferenceEngine), ReferenceEngine)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            Simulator(dt=1e-9, engine="quantum")

    def test_engine_property_assignable(self):
        sim = Simulator(dt=1e-9)
        assert isinstance(sim.engine, ReferenceEngine)
        sim.engine = "compiled"
        assert isinstance(sim.engine, CompiledEngine)


class TestEventSemantics:
    """Kernel event contracts shared by both engines."""

    @pytest.mark.parametrize("engine", ["reference", "compiled"])
    def test_schedule_ordering_ties_fifo(self, engine):
        sim = Simulator(dt=1e-9, engine=engine)
        order = []
        sim.schedule(2e-9, lambda: order.append("first"))
        sim.schedule(2e-9, lambda: order.append("second"))
        sim.schedule(2e-9, lambda: order.append("third"))
        sim.run(3e-9)
        assert order == ["first", "second", "third"]

    @pytest.mark.parametrize("engine", ["reference", "compiled"])
    def test_every_vs_schedule_tie_follows_registration(self, engine):
        sim = Simulator(dt=1e-9, engine=engine)
        order = []
        sim.every(4e-9, lambda s: order.append("every"), start=4e-9)
        sim.schedule(4e-9, lambda: order.append("scheduled"))
        sim.run(5e-9)
        assert order == ["every", "scheduled"]

    @pytest.mark.parametrize("engine", ["reference", "compiled"])
    def test_event_exactly_on_step_boundary(self, engine):
        """An event at exactly k*dt executes with step k (observing the
        kernel contract: the step counter increments only after the
        landing step's events ran, so the event reads k-1)."""
        sim = Simulator(dt=1e-9, engine=engine)
        seen = []
        sim.schedule(5e-9, lambda: seen.append((sim.t, sim.steps)))
        sim.run_steps(10)
        assert seen == [(5e-9, 4)]

    @pytest.mark.parametrize("engine", ["reference", "compiled"])
    def test_event_between_steps_fires_next_boundary(self, engine):
        """An off-grid event executes while the step that crosses it
        commits, observing its own timestamp as sim.t."""
        sim = Simulator(dt=1e-9, engine=engine)
        seen = []
        sim.schedule(4.5e-9, lambda: seen.append((sim.t, sim.steps)))
        sim.run_steps(10)
        assert seen == [(4.5e-9, 4)]

    @pytest.mark.parametrize("engine", ["reference", "compiled"])
    def test_run_steps_counts_exactly(self, engine):
        sim = Simulator(dt=1e-9, engine=engine)
        sim.run_steps(7)
        assert sim.steps == 7
        sim.run_steps(5)
        assert sim.steps == 12
        assert sim.t == pytest.approx(12e-9)

    @pytest.mark.parametrize("engine", ["reference", "compiled"])
    def test_event_sees_committed_quantities(self, engine):
        """An event reads the quantity values of the step it lands on."""
        sim = Simulator(dt=1e-9, engine=engine)
        src = sim.quantity("src", init=3.0)
        out = sim.quantity("out")
        sim.add_block(CallbackBlock("sq", lambda v: v * v,
                                    inputs=[src], outputs=[out],
                                    vectorized=True))
        seen = []
        sim.schedule(4e-9, lambda: seen.append(float(out.value)))
        sim.run_steps(6)
        assert seen == [9.0]

    @pytest.mark.parametrize("engine", ["reference", "compiled"])
    def test_delta_cascade_runs_at_boundary(self, engine):
        sim = Simulator(dt=1e-9, engine=engine)
        s = sim.signal("s", init=0)
        hits = []
        s.watch(lambda sig: hits.append((sim.t, sig.value)))
        sim.schedule(3e-9, lambda: s.assign(1))  # delta cycle at 3 ns
        sim.run_steps(6)
        assert hits == [(3e-9, 1)]


class TestEngineEquivalence:
    """CompiledEngine must reproduce the ReferenceEngine oracle."""

    def test_fig5_testbench_ideal_bit_exact(self):
        bits, sig = fig5_like_signal([1, 0, 0, 1, 1, 0])
        ref = run_receiver("ideal", sig, engine="reference",
                           record=True)
        com = run_receiver("ideal", sig, engine="compiled",
                           record=True)
        assert np.array_equal(ref.bits, com.bits)
        assert np.array_equal(ref.bits, bits)
        assert np.array_equal(ref.slot_values, com.slot_values)
        assert ref.steps == com.steps
        tr_ref = ref.recorder.trace("int_out")
        tr_com = com.recorder.trace("int_out")
        assert np.array_equal(tr_ref.t, tr_com.t)
        assert np.array_equal(tr_ref.values, tr_com.values)

    def test_fig5_testbench_two_pole_equivalent(self):
        bits, sig = fig5_like_signal([0, 1, 1, 0, 1])
        ref = run_receiver("two_pole", sig, engine="reference")
        com = run_receiver("two_pole", sig, engine="compiled")
        assert np.array_equal(ref.bits, com.bits)
        np.testing.assert_allclose(com.slot_values, ref.slot_values,
                                   rtol=1e-9, atol=1e-15)

    def test_surrogate_equivalent(self):
        bits, sig = fig5_like_signal([1, 1, 0, 0])
        ref = run_receiver("surrogate", sig, engine="reference")
        com = run_receiver("surrogate", sig, engine="compiled")
        assert np.array_equal(ref.bits, com.bits)
        np.testing.assert_allclose(com.slot_values, ref.slot_values,
                                   rtol=1e-9, atol=1e-15)

    def test_chunked_grid_bit_exact(self):
        """The time grid is built in bounded chunks on long runs; a
        pathological chunk size must not change a single bit."""
        bits, sig = fig5_like_signal([1, 0, 1, 1, 0, 0])
        ref = run_receiver("ideal", sig, engine="reference")
        tiny = CompiledEngine()
        tiny.GRID_CHUNK = 17  # far below any real segment size
        com = run_receiver("ideal", sig, engine=tiny)
        assert np.array_equal(ref.bits, com.bits)
        assert np.array_equal(ref.slot_values, com.slot_values)
        assert ref.steps == com.steps

    def test_gated_state_block_matches_scalar(self):
        scalar = GatedIntegratorState(2.0e9)
        block = GatedIntegratorState(2.0e9)
        rng = np.random.default_rng(5)
        x = rng.normal(size=64)
        expected = [scalar.integrate(float(v), 1e-10) for v in x]
        got = block.integrate_block(x, 1e-10)
        assert np.array_equal(got, np.asarray(expected))

    def test_long_preamble_run_equivalent(self):
        """Table-1 style span: engines agree symbol after symbol (the
        wall-clock speedup itself is asserted in the benchmark tier,
        where loaded-box headroom is accounted for)."""
        _bits, sig = fig5_like_signal(np.zeros(40, dtype=np.int8))
        ref = run_receiver("ideal", sig, engine="reference")
        com = run_receiver("ideal", sig, engine="compiled")
        assert np.array_equal(ref.bits, com.bits)
        assert np.array_equal(ref.slot_values, com.slot_values)

    def test_scalar_nonlinearity_keeps_lock_step(self):
        """A scalar-only input nonlinearity (no `vectorized` marker)
        must not be fed segment arrays: the integrator block opts out
        and the model still works under the default compiled engine."""
        import math

        from repro.uwb.integrator import TwoPoleIntegrator

        bits, sig = fig5_like_signal([1, 0, 1])
        model = TwoPoleIntegrator(
            input_nonlinearity=lambda v: math.tanh(v))  # scalar-only
        ref = run_receiver(model, sig, engine="reference")
        model2 = TwoPoleIntegrator(
            input_nonlinearity=lambda v: math.tanh(v))
        com = run_receiver(model2, sig, engine="compiled")
        assert np.array_equal(ref.bits, com.bits)
        np.testing.assert_allclose(com.slot_values, ref.slot_values,
                                   rtol=1e-12, atol=0)

    def test_vectorized_nonlinearity_stays_compiled(self):
        from repro.uwb.integrator import CircuitSurrogateIntegrator
        from repro.uwb.system import build_ams_receiver

        _bits, sig = fig5_like_signal([1, 0])
        sim, _harvest = build_ams_receiver(
            FAST, CircuitSurrogateIntegrator(), sig)
        assert sim.engine.explain(sim) is None


class TestCompiledFallback:
    def _chain(self, sim):
        a = sim.quantity("a", init=2.0)
        b = sim.quantity("b")
        sim.add_block(CallbackBlock("sq", lambda v: v * v,
                                    inputs=[a], outputs=[b],
                                    vectorized=True))
        return a, b

    def test_non_vectorized_callback_falls_back(self):
        sim = Simulator(dt=1e-9, engine="compiled")
        a = sim.quantity("a", init=2.0)
        b = sim.quantity("b")
        sim.add_block(CallbackBlock("sq", lambda v: v * v,
                                    inputs=[a], outputs=[b],
                                    vectorized=False))
        sim.run_steps(3)
        assert b.value == 4.0
        assert "step_block" in sim.engine.fallback_reason

    def test_zero_input_callback_falls_back(self):
        sim = Simulator(dt=1e-9, engine="compiled")
        q = sim.quantity("q")
        sim.add_block(CallbackBlock("ramp", lambda: sim.t * 1e9,
                                    inputs=[], outputs=[q]))
        rec = Recorder(sim, [q])
        sim.run(5e-9)
        assert sim.engine.fallback_reason is not None
        # lock-step semantics preserved: the ramp closure ran per step
        assert rec.trace("q").values[-1] == pytest.approx(4.0)

    def test_feedback_topology_falls_back(self):
        sim = Simulator(dt=1e-9, engine="compiled")
        fwd = sim.quantity("fwd")
        fb = sim.quantity("fb")
        # reads a quantity driven by a *later* block: one-step-delay
        # feedback, only valid lock-step
        sim.add_block(CallbackBlock("in", lambda v: v + 1.0,
                                    inputs=[fb], outputs=[fwd],
                                    vectorized=True))
        sim.add_block(CallbackBlock("loop", lambda v: 0.5 * v,
                                    inputs=[fwd], outputs=[fb],
                                    vectorized=True))
        sim.run_steps(4)
        assert "feedback" in sim.engine.fallback_reason
        ref = Simulator(dt=1e-9, engine="reference")
        rfwd = ref.quantity("fwd")
        rfb = ref.quantity("fb")
        ref.add_block(CallbackBlock("in", lambda v: v + 1.0,
                                    inputs=[rfb], outputs=[rfwd]))
        ref.add_block(CallbackBlock("loop", lambda v: 0.5 * v,
                                    inputs=[rfwd], outputs=[rfb]))
        ref.run_steps(4)
        assert fwd.value == rfwd.value
        assert fb.value == rfb.value

    def test_self_feedback_falls_back(self):
        """A block reading its own output is a one-step-delay self-loop
        and must run lock-step, not compile to a constant segment."""
        def build(engine):
            sim = Simulator(dt=1e-9, engine=engine)
            q = sim.quantity("q", init=1.0)
            sim.add_block(CallbackBlock("decay", lambda v: 0.9 * v,
                                        inputs=[q], outputs=[q],
                                        vectorized=True))
            return sim, q

        sim_c, q_c = build("compiled")
        sim_r, q_r = build("reference")
        sim_c.run_steps(5)
        sim_r.run_steps(5)
        assert "feedback" in sim_c.engine.fallback_reason
        assert q_c.value == q_r.value == pytest.approx(0.9 ** 5)

    def test_opaque_step_hook_falls_back(self):
        sim = Simulator(dt=1e-9, engine="compiled")
        self._chain(sim)
        hits = []
        sim.add_step_hook(lambda t: hits.append(t))
        sim.run_steps(3)
        assert "hook" in sim.engine.fallback_reason
        assert len(hits) == 3

    def test_recorder_hook_does_not_fall_back(self):
        sim = Simulator(dt=1e-9, engine="compiled")
        a, b = self._chain(sim)
        rec = Recorder(sim, [a, b])
        sim.run_steps(3)
        assert sim.engine.fallback_reason is None
        assert np.array_equal(rec.trace("b").values, [4.0, 4.0, 4.0])

    def test_compilable_chain_reports_no_reason(self):
        sim = Simulator(dt=1e-9, engine="compiled")
        self._chain(sim)
        assert sim.engine.explain(sim) is None


class TestCompiledRecorder:
    def test_decimated_recorder_matches_reference(self):
        def build(engine):
            sim = Simulator(dt=1e-9, engine=engine)
            src = sim.quantity("src", init=0.0)
            out = sim.quantity("out")
            samples = np.sin(np.linspace(0.0, 3.0, 64))

            from repro.uwb.system import WaveformSource

            sim.add_block(WaveformSource("w", samples, src))
            sim.add_block(CallbackBlock("g", lambda v: 2.0 * v,
                                        inputs=[src], outputs=[out],
                                        vectorized=True))
            rec = Recorder(sim, [out], decimate=4)
            # an event mid-run forces a segment split off the decimation
            # phase
            sim.schedule(13e-9, lambda: None)
            return sim, rec

        sim_r, rec_r = build("reference")
        sim_c, rec_c = build("compiled")
        sim_r.run(50e-9)
        sim_c.run(50e-9)
        assert sim_c.engine.fallback_reason is None
        assert np.array_equal(rec_r.t, rec_c.t)
        assert np.array_equal(rec_r.trace("out").values,
                              rec_c.trace("out").values)

    def test_passthrough_alias_keeps_pre_event_output(self):
        """A pass-through block may return its input array unchanged;
        a boundary event rewriting the undriven input must not leak
        into the recorded output at that step (the block stepped before
        the event, as in the reference loop)."""
        def build(engine):
            sim = Simulator(dt=1e-9, engine=engine)
            src = sim.quantity("src", init=1.0)
            out = sim.quantity("out")
            sim.add_block(CallbackBlock("id", lambda v: v,
                                        inputs=[src], outputs=[out],
                                        vectorized=True))
            sim.schedule(5e-9, lambda: setattr(src, "value", 42.0))
            rec = Recorder(sim, [src, out])
            return sim, rec

        sim_r, rec_r = build("reference")
        sim_c, rec_c = build("compiled")
        sim_r.run_steps(10)
        sim_c.run_steps(10)
        assert sim_c.engine.fallback_reason is None
        for probe in ("src", "out"):
            assert np.array_equal(rec_r.trace(probe).values,
                                  rec_c.trace(probe).values), probe

    def test_boundary_event_writing_driven_quantity(self):
        """An event overwriting a block-driven quantity is visible to
        recorders at exactly the landing step, then the driver
        recomputes - identical under both engines."""
        def build(engine):
            sim = Simulator(dt=1e-9, engine=engine)
            src = sim.quantity("src", init=1.0)
            out = sim.quantity("out")
            sim.add_block(CallbackBlock("x2", lambda v: 2.0 * v,
                                        inputs=[src], outputs=[out],
                                        vectorized=True))
            sim.schedule(5e-9, lambda: setattr(out, "value", 42.0))
            rec = Recorder(sim, [out])
            return sim, rec

        sim_r, rec_r = build("reference")
        sim_c, rec_c = build("compiled")
        sim_r.run_steps(10)
        sim_c.run_steps(10)
        assert sim_c.engine.fallback_reason is None
        expected = [2.0] * 4 + [42.0] + [2.0] * 5
        assert rec_r.trace("out").values.tolist() == expected
        assert np.array_equal(rec_r.trace("out").values,
                              rec_c.trace("out").values)

    def test_signal_probe_sees_boundary_event(self):
        """A recorded signal changed by an event at a segment boundary
        shows the new value at exactly that step under both engines."""
        def build(engine):
            sim = Simulator(dt=1e-9, engine=engine)
            src = sim.quantity("src", init=1.0)
            out = sim.quantity("out")
            sim.add_block(CallbackBlock("id", lambda v: v,
                                        inputs=[src], outputs=[out],
                                        vectorized=True))
            mode = sim.signal("mode", init=0)
            sim.schedule(5e-9, lambda: mode.force(7, sim.t))
            rec = Recorder(sim, [mode])
            return sim, rec

        sim_r, rec_r = build("reference")
        sim_c, rec_c = build("compiled")
        sim_r.run_steps(10)
        sim_c.run_steps(10)
        assert sim_c.engine.fallback_reason is None
        assert np.array_equal(rec_r.trace("mode").values,
                              rec_c.trace("mode").values)
