"""CI smoke tests for the ``examples/`` scripts.

Each script runs as a subprocess with ``REPRO_SMOKE=1`` (reduced
iteration counts, seconds-scale) so the documented entry points cannot
silently rot.  The scripts must exit cleanly and print their headline
sections.
"""

import os
import pathlib
import subprocess
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
EXAMPLES = REPO_ROOT / "examples"
SRC = REPO_ROOT / "src"

#: script name -> text the smoke run must print.
EXPECTED_OUTPUT = {
    "quickstart.py": "Integrate & Dump netlist",
    "ber_study.py": "Figure 6 - BER vs Eb/N0",
    "ranging_study.py": "Table 2 - TWR",
    "methodology_flow.py": "integrate_dump@III",
    "circuit_playground.py": "Two-stage amplifier bias",
    "network_study.py": "Multi-user interference",
}


def run_example(name: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["REPRO_SMOKE"] = "1"
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=300, env=env,
        cwd=REPO_ROOT)


def test_all_examples_are_covered():
    """Every script in examples/ has a smoke test expectation."""
    scripts = {p.name for p in EXAMPLES.glob("*.py")}
    assert scripts == set(EXPECTED_OUTPUT)


@pytest.mark.parametrize("name", sorted(EXPECTED_OUTPUT))
def test_example_smoke(name):
    proc = run_example(name)
    assert proc.returncode == 0, (
        f"{name} failed:\n--- stdout ---\n{proc.stdout}\n"
        f"--- stderr ---\n{proc.stderr}")
    assert EXPECTED_OUTPUT[name] in proc.stdout, (
        f"{name} did not print {EXPECTED_OUTPUT[name]!r}:\n{proc.stdout}")
