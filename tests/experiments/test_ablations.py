"""Ablation harnesses (noise shaping; AGC ablation is covered in
test_experiments.py)."""

import numpy as np
import pytest

from repro.experiments import run_noise_shaping_ablation
from repro.experiments.table1_cpu import Table1Result
from repro.core.metrics import CpuTimeReport


class TestNoiseShaping:
    @pytest.fixture(scope="class")
    def result(self):
        return run_noise_shaping_ablation(
            ebn0_db=12.0, fp2_grid=(1e9, 6e9, 20e9), seed=7, quick=True)

    def test_shaping_direction(self, result):
        """Lowering fp2 into the squared-noise band must not hurt, and
        typically helps (the paper's figure-6 mechanism), with paired
        noise making the comparison deterministic."""
        assert result.ber_shaped[0] <= result.ber_ideal * 1.02

    def test_wide_pole_equals_ideal(self, result):
        """fp2 far above the noise band is indistinguishable from the
        ideal integrator."""
        assert result.ber_shaped[-1] == pytest.approx(
            result.ber_ideal, rel=0.1)

    def test_report(self, result):
        text = result.format_report()
        assert "noise shaping" in text and "vs ideal" in text


class TestTable1Helpers:
    def _result(self, eldo, model, ideal):
        report = CpuTimeReport(simulated_time=1e-6)
        report.add("ELDO", eldo)
        report.add("VHDL-AMS", model)
        report.add("IDEAL", ideal)
        return Table1Result(report=report, bits={}, tx_bits=np.zeros(0))

    def test_cosim_dominates(self):
        assert self._result(10.0, 0.5, 0.4).cosim_dominates()
        assert not self._result(0.6, 0.5, 0.4).cosim_dominates()

    def test_model_ratio(self):
        assert self._result(10.0, 0.8, 0.4).model_vs_ideal_ratio() == \
            pytest.approx(2.0)

    def test_report_mentions_paper(self):
        text = self._result(10.0, 0.5, 0.4).format_report()
        assert "paper ratios" in text
        assert "6.5x" in text
