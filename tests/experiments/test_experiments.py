"""End-to-end experiment harnesses reproduce the paper's shapes.

These are the repository's headline assertions: each test runs a
(reduced-budget) version of a paper experiment and checks the qualitative
claim.  The full-budget versions live in ``benchmarks/``.
"""

import numpy as np
import pytest

from repro.experiments import (
    run_agc_ablation,
    run_fig4,
    run_fig5,
    run_fig6,
    run_phase1_overlap,
    run_table1,
    run_table2,
)


@pytest.fixture(scope="module")
def fig4():
    return run_fig4()


class TestFig4:
    def test_dc_gain_near_paper(self, fig4):
        assert fig4.fit.gain_db == pytest.approx(21.0, abs=2.5)

    def test_poles_in_paper_bands(self, fig4):
        assert 0.4e6 < fig4.fit.fp1_hz < 2e6
        assert 3e9 < fig4.fit.fp2_hz < 15e9

    def test_integrator_slope(self, fig4):
        assert fig4.slope_db_per_decade(10e6, 1e9) == pytest.approx(
            -20.0, abs=1.0)

    def test_model_overlap(self, fig4):
        """Paper: the behavioral model 'perfectly overlaps' the AC
        response."""
        assert fig4.overlap_rms_db < 0.5

    def test_report_text(self, fig4):
        text = fig4.format_report()
        assert "DC gain" in text and "paper" in text


class TestFig5:
    @pytest.fixture(scope="class")
    def fig5(self):
        return run_fig5(dt=0.2e-9)

    def test_three_trajectories_same_shape(self, fig5):
        """All three integrate to a comparable held value and reset."""
        circ = fig5.held_value(fig5.circuit)
        ideal = fig5.held_value(fig5.ideal)
        model = fig5.held_value(fig5.model)
        assert circ > 0.1 and ideal > 0.1 and model > 0.1
        assert model == pytest.approx(circ, rel=0.25)
        assert ideal == pytest.approx(circ, rel=0.35)

    def test_model_tracks_circuit_better_at_small_drive(self):
        small = run_fig5(diff_dc=0.02, dt=0.4e-9)
        large = run_fig5(diff_dc=0.15, dt=0.4e-9)
        assert (small.model_vs_circuit_mismatch
                < large.model_vs_circuit_mismatch)

    def test_reset(self, fig5):
        assert fig5.reset_works(tol=1e-2)


class TestFig6:
    @pytest.fixture(scope="class")
    def fig6(self):
        return run_fig6(ebn0_grid=(4.0, 9.0, 14.0), quick=True, seed=7)

    def test_monotone(self, fig6):
        assert fig6.monotone

    def test_circuit_not_worse_at_high_snr(self, fig6):
        """Paper: the circuit integrator wins slightly at high Eb/N0
        (paired noise makes this a tight comparison)."""
        ber_ideal = fig6.comparison.ber_a[-1]
        ber_circ = fig6.comparison.ber_b[-1]
        assert ber_circ <= ber_ideal * 1.10

    def test_report(self, fig6):
        assert "winner at high Eb/N0" in fig6.format_report()


class TestTable1:
    @pytest.fixture(scope="class")
    def table1(self):
        return run_table1(simulated_time=0.15e-6)

    def test_cosim_dominates(self, table1):
        assert table1.cosim_dominates()

    def test_all_models_demodulate_consistently(self, table1):
        assert np.array_equal(table1.bits["IDEAL"],
                              table1.bits["VHDL-AMS"])

    def test_report(self, table1):
        text = table1.format_report()
        assert "ELDO" in text and "paper ratios" in text


class TestTable2:
    @pytest.fixture(scope="class")
    def table2(self):
        return run_table2(iterations=8, seed=42)

    def test_both_models_near_true_distance(self, table2):
        for res in table2.comparison.entries.values():
            assert 9.0 < res.mean < 13.5

    def test_circuit_offset_larger(self, table2):
        """The paper's headline table-2 observation."""
        assert table2.comparison.offset_increased("ideal", "circuit")

    def test_positive_offsets(self, table2):
        for res in table2.comparison.entries.values():
            assert res.offset > -0.3

    def test_report(self, table2):
        assert "paper" in table2.format_report()


class TestPhase1:
    def test_overlap(self):
        res = run_phase1_overlap(bits_per_point=50, seed=23)
        assert res.decision_agreement > 0.9
        assert res.max_ber_gap < 0.08
        assert "agreement" in res.format_report()


class TestAgcAblation:
    def test_two_stage_removes_offset(self):
        res = run_agc_ablation(iterations=6, seed=42)
        assert res.offset_reduction >= -0.05
        assert abs(res.two_stage.offset) <= abs(
            res.single_stage.offset) + 0.05
        assert "two-stage" in res.format_report()
