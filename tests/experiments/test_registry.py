"""The @experiment registry: declaration, discovery, CLI contract."""

import pytest

from repro.experiments.registry import (
    Experiment,
    ExperimentContext,
    all_experiments,
    experiment,
    experiment_names,
    get_experiment,
)
from repro.experiments import registry as registry_module


class TestRegistration:
    def test_canonical_experiments_registered(self):
        names = experiment_names()
        for name in ("fig6", "table1", "fig5", "table2", "ablations"):
            assert name in names
        # the redesign's additions ride along
        assert "equivalence" in names and "phase1" in names

    def test_menu_order(self):
        names = experiment_names()
        head = [n for n in names
                if n in ("fig6", "table1", "fig5", "table2",
                         "ablations")]
        assert head == ["fig6", "table1", "fig5", "table2", "ablations"]

    def test_every_experiment_has_description(self):
        for exp in all_experiments():
            assert exp.description, exp.name

    def test_get_experiment(self):
        exp = get_experiment("fig6")
        assert isinstance(exp, Experiment) and exp.name == "fig6"

    def test_unknown_name_lists_registered(self):
        with pytest.raises(KeyError, match="fig6"):
            get_experiment("fig7")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already"):
            experiment("fig6")(lambda ctx: "")

    def test_decorator_registers_and_returns_fn(self):
        calls = []

        def adapter(ctx):
            calls.append(ctx)
            return "ok"

        name = "pytest-scratch-experiment"
        try:
            returned = experiment(name, description="scratch",
                                  order=999)(adapter)
            assert returned is adapter
            exp = get_experiment(name)
            assert exp.run(ExperimentContext()) == "ok"
            assert len(calls) == 1
        finally:
            registry_module._EXPERIMENTS.pop(name, None)


class TestContext:
    def test_seed_kwargs(self):
        assert ExperimentContext().seed_kwargs() == {}
        assert ExperimentContext(seed=9).seed_kwargs() == {"seed": 9}
        assert ExperimentContext(seed=9).seed_kwargs("base_seed") == \
            {"base_seed": 9}

    def test_defaults(self):
        ctx = ExperimentContext()
        assert not ctx.full
        assert ctx.processes is None and ctx.store is None


class TestAdaptersEndToEnd:
    def test_fig4_adapter_renders_report(self):
        report = get_experiment("fig4").run(ExperimentContext())
        assert "DC gain" in report

    def test_equivalence_adapter_renders_report(self):
        report = get_experiment("equivalence").run(
            ExperimentContext(seed=5))
        assert "bit-identical" in report
