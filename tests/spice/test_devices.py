"""Device descriptions: validation, renaming, source waveforms."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.spice.devices import (
    Capacitor,
    CurrentSource,
    Diode,
    Inductor,
    Mosfet,
    MosModel,
    Pulse,
    Pwl,
    Resistor,
    Sin,
    VoltageSource,
)
from repro.spice.errors import NetlistError


class TestPassives:
    def test_resistor_value_parsing(self):
        r = Resistor("r1", "a", "b", "10k")
        assert r.value == 10e3
        assert r.conductance == pytest.approx(1e-4)

    @pytest.mark.parametrize("bad", [0, -1, "0"])
    def test_resistor_rejects_nonpositive(self, bad):
        with pytest.raises(NetlistError):
            Resistor("r1", "a", "b", bad)

    def test_capacitor_ic(self):
        c = Capacitor("c1", "a", "b", "1p", ic=0.5)
        assert c.value == 1e-12
        assert c.ic == 0.5

    def test_inductor_rejects_nonpositive(self):
        with pytest.raises(NetlistError):
            Inductor("l1", "a", "b", -1e-9)

    def test_renamed_remaps_nodes(self):
        r = Resistor("r1", "a", "b", 100)
        r2 = r.renamed("x1.r1", {"a": "x1.a", "b": "out"})
        assert r2.name == "x1.r1"
        assert r2.nodes == ("x1.a", "out")
        assert r2.value == 100
        # original untouched (immutability)
        assert r.nodes == ("a", "b")


class TestWaveforms:
    def test_pulse_levels(self):
        p = Pulse(0.0, 1.8, td=1e-9, tr=1e-10, tf=1e-10, pw=5e-9)
        assert p.value(0.0) == 0.0
        assert p.value(1e-9 + 5e-11) == pytest.approx(0.9)
        assert p.value(3e-9) == 1.8
        assert p.value(7e-9) == 0.0

    def test_pulse_periodic(self):
        p = Pulse(0.0, 1.0, tr=1e-12, tf=1e-12, pw=4e-9, per=10e-9)
        assert p.value(2e-9) == pytest.approx(p.value(12e-9))

    def test_pulse_validation(self):
        with pytest.raises(NetlistError):
            Pulse(0, 1, per=-1.0)
        with pytest.raises(NetlistError):
            Pulse(0, 1, tr=-1e-9)

    def test_sin_waveform(self):
        s = Sin(vo=0.5, va=1.0, freq=1e6)
        assert s.value(0.0) == pytest.approx(0.5)
        assert s.value(0.25e-6) == pytest.approx(1.5)

    def test_sin_delay(self):
        s = Sin(vo=0.0, va=1.0, freq=1e6, td=1e-6)
        assert s.value(0.5e-6) == 0.0

    def test_sin_rejects_bad_freq(self):
        with pytest.raises(NetlistError):
            Sin(0, 1, freq=0.0)

    def test_pwl_interpolation(self):
        w = Pwl([(0.0, 0.0), (1e-9, 1.0), (2e-9, -1.0)])
        assert w.value(-1.0) == 0.0
        assert w.value(0.5e-9) == pytest.approx(0.5)
        assert w.value(1.5e-9) == pytest.approx(0.0)
        assert w.value(5e-9) == -1.0

    def test_pwl_requires_increasing_times(self):
        with pytest.raises(NetlistError):
            Pwl([(0.0, 0.0), (0.0, 1.0)])

    @given(st.floats(min_value=0.0, max_value=3e-9))
    def test_pwl_bounded_by_breakpoints(self, t):
        w = Pwl([(0.0, 0.0), (1e-9, 1.0), (2e-9, -1.0)])
        assert -1.0 <= w.value(t) <= 1.0


class TestSources:
    def test_dc_and_wave(self):
        v = VoltageSource("v1", "a", "0", dc=1.0,
                          wave=Pulse(0.0, 2.0, tr=1e-12, pw=1e-9))
        assert v.value_at(0.5e-9) == pytest.approx(2.0)
        v2 = VoltageSource("v2", "a", "0", dc=1.0)
        assert v2.value_at(123.0) == 1.0

    def test_ac_phasor(self):
        v = VoltageSource("v1", "a", "0", ac_mag=2.0, ac_phase=90.0)
        assert v.ac_complex.real == pytest.approx(0.0, abs=1e-12)
        assert v.ac_complex.imag == pytest.approx(2.0)

    def test_current_source_value(self):
        i = CurrentSource("i1", "a", "0", dc="1m")
        assert i.dc == 1e-3


class TestMosfet:
    def test_mosmodel_validation(self):
        with pytest.raises(NetlistError):
            MosModel(name="bad", mtype="x")
        with pytest.raises(NetlistError):
            MosModel(name="bad", kp=-1.0)

    def test_mosfet_size_validation(self):
        with pytest.raises(NetlistError):
            Mosfet("m1", "d", "g", "s", "b", "nch", w=0.0, l=1e-6)

    def test_mosfet_accepts_model_object(self):
        model = MosModel(name="nch")
        m = Mosfet("m1", "d", "g", "s", "b", model, w=1e-6, l=1e-6)
        assert m.model == "nch"

    def test_mos_sign(self):
        assert MosModel(name="n", mtype="n").sign == 1.0
        assert MosModel(name="p", mtype="p").sign == -1.0

    def test_renamed(self):
        m = Mosfet("m1", "d", "g", "s", "b", "nch", w=1e-6, l=1e-6)
        m2 = m.renamed("x.m1", {"d": "x.d", "g": "in"})
        assert m2.nodes == ("x.d", "in", "s", "b")
        assert m2.w == m.w


class TestDiode:
    def test_nodes(self):
        d = Diode("d1", "a", "k", "dm")
        assert d.nodes == ("a", "k")
