"""Engineering-notation parsing and formatting."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.spice.units import format_value, parse_value


class TestParseValue:
    @pytest.mark.parametrize("text,expected", [
        ("1", 1.0),
        ("1.5", 1.5),
        ("-3", -3.0),
        ("1e3", 1000.0),
        ("2.5E-9", 2.5e-9),
        ("1k", 1e3),
        ("1K", 1e3),
        ("2.2MEG", 2.2e6),
        ("2.2meg", 2.2e6),
        ("10u", 10e-6),
        ("0.5p", 0.5e-12),
        ("3n", 3e-9),
        ("4f", 4e-15),
        ("7m", 7e-3),
        ("1g", 1e9),
        ("1t", 1e12),
        ("5a", 5e-18),
        ("1mil", 25.4e-6),
    ])
    def test_suffixes(self, text, expected):
        assert parse_value(text) == pytest.approx(expected)

    @pytest.mark.parametrize("text,expected", [
        ("10pF", 10e-12),
        ("1kOhm", 1e3),
        ("3V", 3.0),
        ("2.5nH", 2.5e-9),
    ])
    def test_trailing_units_ignored(self, text, expected):
        assert parse_value(text) == pytest.approx(expected)

    def test_numbers_pass_through(self):
        assert parse_value(42) == 42.0
        assert parse_value(2.5) == 2.5

    @pytest.mark.parametrize("bad", ["", "abc", "k1", "--3", "1..2"])
    def test_rejects_garbage(self, bad):
        with pytest.raises(ValueError):
            parse_value(bad)

    def test_whitespace_tolerated(self):
        assert parse_value("  1k ") == 1000.0

    @given(st.floats(min_value=-1e20, max_value=1e20,
                     allow_nan=False, allow_infinity=False))
    def test_plain_float_roundtrip(self, x):
        assert parse_value(repr(x)) == pytest.approx(x, rel=1e-12)


class TestFormatValue:
    @pytest.mark.parametrize("value,unit,expected", [
        (1e-12, "F", "1 pF"),
        (1000.0, "Ohm", "1 kOhm"),
        (0.0, "V", "0 V"),
        (2.5e-9, "s", "2.5 ns"),
        (3e6, "Hz", "3 MegHz"),
    ])
    def test_basic(self, value, unit, expected):
        assert format_value(value, unit) == expected

    @given(st.floats(min_value=1e-14, max_value=1e11,
                     allow_nan=False, allow_infinity=False))
    def test_roundtrip_through_parse(self, x):
        text = format_value(x, digits=12)
        assert parse_value(text) == pytest.approx(x, rel=1e-9)

    def test_negative_values(self):
        assert format_value(-1e3, "V").startswith("-1 k")
