"""Circuit-theory invariants of the MNA engine (property-based)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.spice import (
    Circuit,
    CurrentSource,
    Resistor,
    SingularMatrixError,
    VoltageSource,
    operating_point,
)


def ladder(r_values, v_in):
    """A resistive ladder in -> n1 -> n2 ... -> 0."""
    ckt = Circuit("ladder")
    ckt.add(VoltageSource("vin", "n0", "0", dc=v_in))
    for k, r in enumerate(r_values):
        ckt.add(Resistor(f"r{k}", f"n{k}", f"n{k + 1}", r))
    ckt.add(Resistor("rend", f"n{len(r_values)}", "0", 1e3))
    return ckt


class TestSuperposition:
    @given(v1=st.floats(-5.0, 5.0), i2=st.floats(-1e-3, 1e-3))
    @settings(max_examples=25, deadline=None)
    def test_two_source_superposition(self, v1, i2):
        """v(out) is linear in each independent source."""

        def solve(v_val, i_val):
            ckt = Circuit("sup")
            ckt.add(VoltageSource("v1", "a", "0", dc=v_val),
                    Resistor("r1", "a", "out", 1e3),
                    Resistor("r2", "out", "0", 2e3),
                    CurrentSource("i1", "0", "out", dc=i_val))
            return operating_point(ckt).v("out")

        both = solve(v1, i2)
        only_v = solve(v1, 0.0)
        only_i = solve(0.0, i2)
        assert both == pytest.approx(only_v + only_i, abs=1e-9)

    @given(scale=st.floats(0.1, 10.0))
    @settings(max_examples=15, deadline=None)
    def test_homogeneity(self, scale):
        base = operating_point(ladder([1e3, 2e3], 1.0)).v("n2")
        scaled = operating_point(ladder([1e3, 2e3], scale)).v("n2")
        assert scaled == pytest.approx(scale * base, rel=1e-9)


class TestConservation:
    @given(st.lists(st.floats(10.0, 1e5), min_size=1, max_size=5),
           st.floats(0.1, 10.0))
    @settings(max_examples=20, deadline=None)
    def test_power_balance(self, r_values, v_in):
        """Tellegen: source power equals total resistor dissipation."""
        ckt = ladder(r_values, v_in)
        op = operating_point(ckt)
        i_src = op.i("vin")
        p_source = -v_in * i_src  # delivered power
        p_diss = 0.0
        for k, r in enumerate(r_values):
            v = op.vdiff(f"n{k}", f"n{k + 1}")
            p_diss += v * v / r
        v_end = op.v(f"n{len(r_values)}")
        p_diss += v_end * v_end / 1e3
        # Wide resistor spreads make the ladder system ill-conditioned
        # and squaring node voltages doubles the solve's relative
        # error, so the admissible imbalance scales with the spread:
        # tight 1e-6 for well-conditioned ladders, relaxing smoothly
        # (e.g. 1e-4 at a 1e4 spread, the hypothesis-found example).
        spread = max(r_values) / min(r_values)
        tolerance = 1e-6 * max(1.0, spread / 100.0)
        assert p_diss == pytest.approx(p_source, rel=tolerance)

    @given(st.lists(st.floats(10.0, 1e5), min_size=1, max_size=5))
    @settings(max_examples=20, deadline=None)
    def test_voltage_monotone_along_ladder(self, r_values):
        ckt = ladder(r_values, 1.0)
        op = operating_point(ckt)
        voltages = [op.v(f"n{k}") for k in range(len(r_values) + 1)]
        assert all(a >= b - 1e-12 for a, b in zip(voltages, voltages[1:]))
        assert voltages[0] == pytest.approx(1.0)


class TestSingularities:
    def test_conflicting_voltage_sources(self):
        ckt = Circuit("conflict")
        ckt.add(VoltageSource("v1", "a", "0", dc=1.0),
                VoltageSource("v2", "a", "0", dc=2.0))
        with pytest.raises(SingularMatrixError):
            operating_point(ckt)

    def test_series_current_sources_unsolvable(self):
        """Two different current sources in series have no solution;
        gmin keeps the matrix regular but the node runs away."""
        ckt = Circuit("iseries")
        ckt.add(CurrentSource("i1", "0", "mid", dc=1e-3),
                CurrentSource("i2", "mid", "0", dc=2e-3),
                Resistor("anchor", "mid", "0", 1e12))
        op = operating_point(ckt)
        assert abs(op.v("mid")) > 1e6  # pathological, as expected
