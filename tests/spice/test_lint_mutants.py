"""Mutation testing of the lint rules.

Procedurally generate known-good random ladder circuits, apply one
defect-injecting mutation per circuit, and require the matching rule to
catch *every single mutant* (100/100 per category).  A rule that only
catches most mutants has a hole in its graph reasoning.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.spice import Circuit, Resistor, Subckt, VoltageSource
from repro.spice.devices import Capacitor
from repro.spice.lint import Severity, lint_circuit

N_MUTANTS = 100


def random_ladder(rng: random.Random) -> Circuit:
    """A randomized, lint-clean RC ladder.

    ``v1`` drives ``n0``; a chain of resistors walks to ``n<k>``; every
    intermediate node may get a decoupling cap to ground; the far end is
    resistively terminated.  Always exactly one DC-connected, grounded
    component with every node at degree >= 2.
    """
    n_stages = rng.randint(2, 8)
    ckt = Circuit(f"ladder{n_stages}")
    ckt.add(VoltageSource("v1", "n0", "0", dc=rng.uniform(0.5, 5.0)))
    for k in range(n_stages):
        ckt.add(Resistor(f"r{k}", f"n{k}", f"n{k + 1}",
                         rng.uniform(10.0, 1e5)))
        if rng.random() < 0.5:
            ckt.add(Capacitor(f"c{k}", f"n{k + 1}", "0",
                              rng.uniform(1e-15, 1e-9)))
    ckt.add(Resistor("rend", f"n{n_stages}", "0", rng.uniform(10.0, 1e5)))
    return ckt


def rule_ids(report):
    return {f.rule_id for f in report.findings}


class TestBaseGeneratorIsClean:
    """The mutation premise: un-mutated ladders carry zero defects."""

    def test_hundred_random_ladders_clean(self):
        for seed in range(N_MUTANTS):
            report = lint_circuit(random_ladder(random.Random(seed)))
            assert report.at_least(Severity.WARN) == (), (
                f"seed {seed}: base ladder not clean:\n"
                + report.format_text())

    @given(st.integers(0, 10_000))
    @settings(max_examples=50, deadline=None)
    def test_any_seed_yields_clean_ladder(self, seed):
        assert lint_circuit(
            random_ladder(random.Random(seed))).at_least(
                Severity.WARN) == ()


class TestFloatingNodeMutants:
    def test_catch_rate_100_of_100(self):
        caught = 0
        for seed in range(N_MUTANTS):
            rng = random.Random(seed)
            ckt = random_ladder(rng)
            # Detach one terminal of a random resistor onto a fresh
            # node: that node now has exactly one connection.
            victims = [d for d in ckt.devices if isinstance(d, Resistor)]
            victim = rng.choice(victims)
            side = rng.choice(["n1", "n2"])
            kept = victim.n2 if side == "n1" else victim.n1
            repl = (Resistor(victim.name, "mut_detached", kept,
                             victim.value) if side == "n1" else
                    Resistor(victim.name, victim.n1, "mut_detached",
                             victim.value))
            ckt.replace_device(repl)
            if "SP-FLOAT-001" in rule_ids(lint_circuit(ckt)):
                caught += 1
        assert caught == N_MUTANTS


class TestCapacitorOnlyPathMutants:
    def test_catch_rate_100_of_100(self):
        caught = 0
        for seed in range(N_MUTANTS):
            rng = random.Random(seed)
            ckt = random_ladder(rng)
            # Swap one series resistor of the chain for a capacitor:
            # every node beyond the swap loses its DC path to ground
            # (any decoupling caps to ground conduct nothing).
            chain = [d for d in ckt.devices
                     if isinstance(d, Resistor) and d.name != "rend"]
            victim = rng.choice(chain)
            ckt.replace_device(
                Capacitor(victim.name, victim.n1, victim.n2, 1e-12))
            # ... and cut the resistive termination the same way, so
            # the far end cannot sneak back to ground through rend.
            rend = ckt.device("rend")
            ckt.replace_device(
                Capacitor("rend", rend.n1, rend.n2, 1e-12))
            if "SP-DCPATH-001" in rule_ids(lint_circuit(ckt)):
                caught += 1
        assert caught == N_MUTANTS


class TestIsolatedIslandMutants:
    def test_catch_rate_100_of_100(self):
        caught = 0
        for seed in range(N_MUTANTS):
            rng = random.Random(seed)
            ckt = random_ladder(rng)
            # Add a resistor ring on fresh nodes: structurally sound on
            # its own (every node degree 2) but unreachable from the
            # rest of the circuit.
            ring = rng.randint(2, 5)
            for k in range(ring):
                ckt.add(Resistor(f"isl{k}", f"isl_n{k}",
                                 f"isl_n{(k + 1) % ring}",
                                 rng.uniform(10.0, 1e5)))
            if "SP-ISLAND-001" in rule_ids(lint_circuit(ckt)):
                caught += 1
        assert caught == N_MUTANTS


class TestDanglingPortMutants:
    def test_catch_rate_100_of_100(self):
        caught = 0
        for seed in range(N_MUTANTS):
            rng = random.Random(seed)
            inner = random_ladder(rng)
            # Expose a random internal node plus one port name that no
            # internal device ever touches.
            exposed = rng.choice(inner.node_names())
            sub = Subckt(name="mut", ports=[exposed, "mut_nc"],
                         circuit=inner)
            host = Circuit("host")
            host.add_subckt(sub)
            report = lint_circuit(host)
            findings = [f for f in report.findings
                        if f.rule_id == "SP-PORT-001"]
            if findings and any("mut_nc" in f.nodes for f in findings):
                caught += 1
        assert caught == N_MUTANTS


class TestMutantsAreErrors:
    """Spot-check that mutants trip the pre-flight gate, not just the
    full report (the cosim path runs error-severity rules only)."""

    @pytest.mark.parametrize("seed", range(10))
    def test_float_mutant_fails_preflight(self, seed):
        from repro.spice import NetlistLintError, preflight_check

        rng = random.Random(seed)
        ckt = random_ladder(rng)
        ckt.add(Resistor("rmut", f"n{rng.randint(0, 2)}", "mut_hang",
                         1e3))
        with pytest.raises(NetlistLintError, match="SP-FLOAT-001"):
            preflight_check(ckt)
