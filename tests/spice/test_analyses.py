"""OP / DC sweep / AC / transient analyses against analytic results."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.spice import (
    AnalysisError,
    Capacitor,
    Circuit,
    CurrentSource,
    Diode,
    Inductor,
    Mosfet,
    Resistor,
    SingularMatrixError,
    Vccs,
    Vcvs,
    VoltageSource,
    ac_analysis,
    dc_sweep,
    generic_018,
    operating_point,
    transient,
)
from repro.spice.analysis.ac import logspace_freqs
from repro.spice.analysis.tran import TransientStepper
from repro.spice.devices import DiodeModel, Pulse, SwitchModel, VSwitch

CARDS = generic_018()


class TestOperatingPoint:
    def test_divider(self):
        ckt = Circuit("div")
        ckt.add(VoltageSource("v1", "in", "0", dc=2.0),
                Resistor("r1", "in", "out", 1e3),
                Resistor("r2", "out", "0", 3e3))
        op = operating_point(ckt)
        assert op.v("out") == pytest.approx(1.5, rel=1e-6)
        assert op.i("v1") == pytest.approx(-0.5e-3, rel=1e-6)
        assert op.vdiff("in", "out") == pytest.approx(0.5, rel=1e-6)

    def test_current_source(self):
        ckt = Circuit("i")
        ckt.add(CurrentSource("i1", "0", "a", dc=1e-3),
                Resistor("r1", "a", "0", 1e3))
        op = operating_point(ckt)
        assert op.v("a") == pytest.approx(1.0, rel=1e-6)

    def test_vcvs(self):
        ckt = Circuit("e")
        ckt.add(VoltageSource("v1", "in", "0", dc=0.5),
                Vcvs("e1", "out", "0", "in", "0", 10.0),
                Resistor("rl", "out", "0", 1e3))
        op = operating_point(ckt)
        assert op.v("out") == pytest.approx(5.0, rel=1e-9)

    def test_vccs(self):
        ckt = Circuit("g")
        ckt.add(VoltageSource("v1", "in", "0", dc=1.0),
                Vccs("g1", "0", "out", "in", "0", 2e-3),
                Resistor("rl", "out", "0", 1e3))
        op = operating_point(ckt)
        assert op.v("out") == pytest.approx(2.0, rel=1e-6)

    def test_inductor_is_dc_short(self):
        ckt = Circuit("l")
        ckt.add(VoltageSource("v1", "in", "0", dc=1.0),
                Inductor("l1", "in", "out", 1e-9),
                Resistor("r1", "out", "0", 1e3))
        op = operating_point(ckt)
        assert op.v("out") == pytest.approx(1.0, rel=1e-6)
        assert op.i("l1") == pytest.approx(1e-3, rel=1e-6)

    def test_floating_node_detected(self):
        ckt = Circuit("bad")
        ckt.add(VoltageSource("v1", "in", "0", dc=1.0),
                Capacitor("c1", "in", "float", 1e-12),
                Capacitor("c2", "float", "0", 1e-12),
                Resistor("r1", "in", "0", 1e3))
        # gmin keeps this solvable; the floating node just sits at ~0
        op = operating_point(ckt)
        assert abs(op.v("float")) < 2.0

    def test_diode_forward_drop(self):
        ckt = Circuit("d")
        ckt.add_model(DiodeModel(name="dm", is_=1e-14))
        ckt.add(VoltageSource("v1", "in", "0", dc=5.0),
                Resistor("r1", "in", "a", 1e3),
                Diode("d1", "a", "0", "dm"))
        op = operating_point(ckt)
        assert 0.55 < op.v("a") < 0.8

    def test_switch_states(self):
        ckt = Circuit("s")
        ckt.add_model(SwitchModel(name="sw", ron=1.0, roff=1e9, vt=0.9))
        ckt.add(VoltageSource("vc", "c", "0", dc=1.8),
                VoltageSource("v1", "in", "0", dc=1.0),
                VSwitch("s1", "in", "out", "c", "0", "sw"),
                Resistor("rl", "out", "0", 1e3))
        on = operating_point(ckt).v("out")
        ckt.replace_device(VoltageSource("vc", "c", "0", dc=0.0))
        off = operating_point(ckt).v("out")
        assert on == pytest.approx(1.0, rel=1e-3)
        assert off < 1e-3

    def test_mos_inverter_transfer(self):
        ckt = Circuit("inv", models=CARDS.values())
        ckt.add(VoltageSource("vdd", "vdd", "0", dc=1.8),
                VoltageSource("vin", "in", "0", dc=0.0),
                Mosfet("mn", "out", "in", "0", "0", "nch",
                       w=1e-6, l=0.18e-6),
                Mosfet("mp", "out", "in", "vdd", "vdd", "pch",
                       w=2e-6, l=0.18e-6))
        low_in = operating_point(ckt).v("out")
        ckt.replace_device(VoltageSource("vin", "in", "0", dc=1.8))
        high_in = operating_point(ckt).v("out")
        assert low_in > 1.7
        assert high_in < 0.1


class TestDcSweep:
    def test_mos_output_curve_monotone(self):
        ckt = Circuit("idvd", models=CARDS.values())
        ckt.add(VoltageSource("vg", "g", "0", dc=1.2),
                VoltageSource("vd", "d", "0", dc=0.0),
                Mosfet("m1", "d", "g", "0", "0", "nch", w=2e-6, l=1e-6))
        res = dc_sweep(ckt, "vd", np.linspace(0.0, 1.8, 19))
        ids = -res.i("vd")
        assert np.all(np.diff(ids) > 0)  # lambda keeps it increasing

    def test_unknown_source(self):
        ckt = Circuit("x")
        ckt.add(Resistor("r1", "a", "0", 1.0))
        with pytest.raises(AnalysisError):
            dc_sweep(ckt, "vnope", [0.0, 1.0])

    def test_result_accessors(self):
        ckt = Circuit("div")
        ckt.add(VoltageSource("v1", "in", "0", dc=1.0),
                Resistor("r1", "in", "out", 1e3),
                Resistor("r2", "out", "0", 1e3))
        res = dc_sweep(ckt, "v1", [0.0, 1.0, 2.0])
        assert res.v("out") == pytest.approx([0.0, 0.5, 1.0])
        assert res.vdiff("in", "out") == pytest.approx([0.0, 0.5, 1.0])


class TestAc:
    def test_rc_pole(self):
        ckt = Circuit("rc")
        ckt.add(VoltageSource("v1", "in", "0", ac_mag=1.0),
                Resistor("r1", "in", "out", 1e3),
                Capacitor("c1", "out", "0", 1e-9))
        f_pole = 1.0 / (2 * math.pi * 1e3 * 1e-9)
        ac = ac_analysis(ckt, [f_pole / 100, f_pole, f_pole * 100])
        mags = np.abs(ac.v("out"))
        assert mags[0] == pytest.approx(1.0, abs=1e-3)
        assert mags[1] == pytest.approx(1 / math.sqrt(2), rel=1e-3)
        assert mags[2] == pytest.approx(0.01, rel=0.05)
        assert ac.phase_deg("out")[1] == pytest.approx(-45.0, abs=0.5)

    def test_lc_resonance(self):
        ckt = Circuit("rlc")
        ckt.add(VoltageSource("v1", "in", "0", ac_mag=1.0),
                Resistor("r1", "in", "out", 10.0),
                Inductor("l1", "out", "mid", 1e-6),
                Capacitor("c1", "mid", "0", 1e-12))
        f0 = 1.0 / (2 * math.pi * math.sqrt(1e-6 * 1e-12))
        ac = ac_analysis(ckt, [f0])
        # At resonance the LC is a short: the capacitor voltage is
        # Q * Vin with Q = sqrt(L/C) / R = 100.
        q_factor = math.sqrt(1e-6 / 1e-12) / 10.0
        assert abs(ac.v("mid")[0]) == pytest.approx(q_factor, rel=1e-2)

    def test_requires_stimulus(self):
        ckt = Circuit("x")
        ckt.add(VoltageSource("v1", "in", "0", dc=1.0),
                Resistor("r1", "in", "0", 1e3))
        with pytest.raises(AnalysisError):
            ac_analysis(ckt, [1e3])

    def test_cs_amplifier_gain_matches_smallsignal(self):
        ckt = Circuit("cs", models=CARDS.values())
        ckt.add(VoltageSource("vdd", "vdd", "0", dc=1.8),
                VoltageSource("vg", "g", "0", dc=0.9, ac_mag=1.0),
                Resistor("rd", "vdd", "d", 10e3),
                Mosfet("m1", "d", "g", "0", "0", "nch", w=2e-6, l=0.5e-6))
        op = operating_point(ckt)
        info = op.mos_info()["m1"]
        expected = info["gm"] / (1e-4 + info["gds"])
        ac = ac_analysis(ckt, [1e3], op=op)
        assert abs(ac.v("d")[0]) == pytest.approx(expected, rel=1e-3)

    def test_logspace_freqs(self):
        f = logspace_freqs(1e2, 1e6, 10)
        assert f[0] == pytest.approx(1e2)
        assert f[-1] == pytest.approx(1e6)
        assert len(f) == 41
        with pytest.raises(AnalysisError):
            logspace_freqs(1e6, 1e2)


class TestTransient:
    def test_rc_step_charge(self):
        ckt = Circuit("rc")
        ckt.add(VoltageSource("v1", "in", "0",
                              wave=Pulse(0.0, 1.0, tr=1e-12, pw=1.0)),
                Resistor("r1", "in", "out", 1e3),
                Capacitor("c1", "out", "0", 1e-9))
        res = transient(ckt, 5e-6, 5e-9)
        tau = 1e-6
        for k in (1.0, 2.0, 3.0):
            expected = 1.0 - math.exp(-k)
            assert res.at("out", k * tau) == pytest.approx(expected,
                                                           abs=5e-3)

    @pytest.mark.parametrize("method", ["trap", "be"])
    def test_step_refinement_converges(self, method):
        def run(dt):
            ckt = Circuit("rc")
            ckt.add(VoltageSource("v1", "in", "0",
                                  wave=Pulse(0.0, 1.0, tr=1e-12, pw=1.0)),
                    Resistor("r1", "in", "out", 1e3),
                    Capacitor("c1", "out", "0", 1e-9))
            res = transient(ckt, 2e-6, dt, method=method)
            return res.at("out", 1e-6)

        exact = 1.0 - math.exp(-1.0)
        coarse = abs(run(4e-8) - exact)
        fine = abs(run(5e-9) - exact)
        assert fine < coarse
        assert fine < 2e-3

    def test_lc_oscillation_frequency(self):
        ckt = Circuit("lc")
        ckt.add(Capacitor("c1", "a", "0", 1e-9, ic=1.0),
                Inductor("l1", "a", "0", 1e-6),
                Resistor("rbig", "a", "0", 1e9))
        # initialize via uic on the node
        stepper = TransientStepper(ckt, 5e-9, uic=True)
        stepper.x[stepper.system.node_index["a"]] = 1.0
        stepper._refresh_caps()
        crossings = []
        prev = stepper.v("a")
        for _ in range(2000):
            stepper.step()
            now = stepper.v("a")
            if prev > 0 >= now:
                crossings.append(stepper.t)
            prev = now
        assert len(crossings) >= 2
        period = crossings[1] - crossings[0]
        f_meas = 1.0 / period
        f0 = 1.0 / (2 * math.pi * math.sqrt(1e-6 * 1e-9))
        assert f_meas == pytest.approx(f0, rel=0.05)

    def test_stepper_source_override(self):
        ckt = Circuit("follow")
        ckt.add(VoltageSource("vin", "in", "0", dc=0.0),
                Resistor("r1", "in", "out", 100.0),
                Capacitor("c1", "out", "0", 1e-12))
        stepper = TransientStepper(ckt, 1e-11)
        stepper.set_source("vin", 1.0)
        stepper.run_until(5e-9)  # many tau
        assert stepper.v("out") == pytest.approx(1.0, abs=1e-3)

    def test_probe_validation(self):
        ckt = Circuit("rc")
        ckt.add(VoltageSource("v1", "in", "0", dc=1.0),
                Resistor("r1", "in", "0", 1e3))
        with pytest.raises(AnalysisError):
            transient(ckt, 1e-9, 1e-10, probes=["nope"])

    def test_current_probe(self):
        ckt = Circuit("r")
        ckt.add(VoltageSource("v1", "in", "0", dc=1.0),
                Resistor("r1", "in", "0", 1e3))
        res = transient(ckt, 1e-9, 1e-10, current_probes=["v1"])
        assert res.i("v1")[-1] == pytest.approx(-1e-3, rel=1e-6)

    def test_dt_validation(self):
        ckt = Circuit("r")
        ckt.add(VoltageSource("v1", "in", "0", dc=1.0),
                Resistor("r1", "in", "0", 1e3))
        with pytest.raises(AnalysisError):
            TransientStepper(ckt, -1e-9)
        with pytest.raises(AnalysisError):
            TransientStepper(ckt, 1e-9, method="rk4")

    @given(r=st.floats(100.0, 1e5), c=st.floats(1e-12, 1e-9))
    @settings(max_examples=10, deadline=None)
    def test_rc_final_value_property(self, r, c):
        """Whatever the RC, the step response settles to the source."""
        ckt = Circuit("rc")
        ckt.add(VoltageSource("v1", "in", "0",
                              wave=Pulse(0.0, 1.0, tr=1e-12, pw=1e3)),
                Resistor("r1", "in", "out", r),
                Capacitor("c1", "out", "0", c))
        tau = r * c
        res = transient(ckt, 8 * tau, tau / 20)
        assert res.v("out")[-1] == pytest.approx(1.0, abs=2e-3)
