"""CircuitGraph: the incidence/connectivity layer under the lint rules."""

from repro.spice import Circuit, Resistor, VoltageSource
from repro.spice.devices import Capacitor, CurrentSource, Mosfet, Vcvs
from repro.spice.library import generic_018
from repro.spice.lint import (
    CircuitGraph,
    dc_edges,
    non_current_source_edges,
    structural_edges,
)


def rc_ladder():
    ckt = Circuit("rc")
    ckt.add(VoltageSource("v1", "in", "0", dc=1.0))
    ckt.add(Resistor("r1", "in", "out", 1e3))
    ckt.add(Capacitor("c1", "out", "0", 1e-12))
    return ckt


class TestConstruction:
    def test_nodes_and_degrees(self):
        g = CircuitGraph(rc_ladder())
        assert set(g.nodes) == {"0", "in", "out"}
        assert g.degree("in") == 2   # v1 and r1
        assert g.degree("out") == 2  # r1 and c1
        assert g.degree("0") == 2    # v1 and c1
        assert g.has_ground

    def test_ground_aliases_collapse(self):
        ckt = Circuit("t")
        ckt.add(Resistor("r1", "a", "GND", 1.0))
        ckt.add(Resistor("r2", "a", "vss!", 1.0))
        g = CircuitGraph(ckt)
        assert set(g.nodes) == {"0", "a"}
        assert g.degree("gnd") == 2  # queries normalize too

    def test_devices_at_deduplicates(self):
        ckt = Circuit("t")
        # Both terminals of rshort on one node: one device, not two.
        ckt.add(Resistor("rshort", "a", "a", 1.0))
        ckt.add(Resistor("r2", "a", "0", 1.0))
        g = CircuitGraph(ckt)
        assert [d.name for d in g.devices_at("a")] == ["rshort", "r2"]

    def test_neighbors(self):
        g = CircuitGraph(rc_ladder())
        assert set(g.neighbors("out")) == {"in", "0"}
        assert set(g.neighbors("in")) == {"0", "out"}

    def test_external_nodes_exist_without_devices(self):
        g = CircuitGraph(Circuit("empty"), external=["port_a"])
        assert "port_a" in g.nodes
        assert g.is_external("port_a")
        assert g.degree("port_a") == 0


class TestEdgeViews:
    def test_structural_edges_chain_all_terminals(self):
        m = Mosfet("m1", "d", "g", "s", "b", "nch", w=1e-6, l=1e-6)
        assert list(structural_edges(m)) == [
            ("d", "g"), ("g", "s"), ("s", "b")]

    def test_dc_edges_resistor_conducts(self):
        r = Resistor("r1", "a", "b", 1.0)
        assert list(dc_edges(r)) == [("a", "b")]

    def test_dc_edges_capacitor_blocks(self):
        c = Capacitor("c1", "a", "b", 1e-12)
        assert list(dc_edges(c)) == []

    def test_dc_edges_current_source_blocks(self):
        i = CurrentSource("i1", "a", "b", dc=1e-3)
        assert list(dc_edges(i)) == []

    def test_dc_edges_mosfet_gate_open(self):
        m = Mosfet("m1", "d", "g", "s", "b", "nch", w=1e-6, l=1e-6)
        edges = list(dc_edges(m))
        flat = {n for e in edges for n in e}
        assert "g" not in flat            # gate is purely capacitive
        assert {"d", "s", "b"} <= flat    # channel + junctions conduct

    def test_dc_edges_vcvs_sense_pins_open(self):
        e = Vcvs("e1", "p", "n", "cp", "cn", gain=2.0)
        assert list(dc_edges(e)) == [("p", "n")]

    def test_non_current_source_edges(self):
        i = CurrentSource("i1", "a", "b", dc=1e-3)
        r = Resistor("r1", "a", "b", 1.0)
        assert list(non_current_source_edges(i)) == []
        assert list(non_current_source_edges(r)) == [("a", "b")]


class TestConnectivity:
    def test_structural_single_component(self):
        g = CircuitGraph(rc_ladder())
        comps = g.structural_components()
        assert len(comps) == 1
        assert comps[0] == {"0", "in", "out"}

    def test_structural_island_detected(self):
        ckt = rc_ladder()
        ckt.add(Resistor("ri", "x", "y", 1.0))
        comps = CircuitGraph(ckt).structural_components()
        assert {"x", "y"} in comps

    def test_dc_ac_coupled_stage_still_anchored(self):
        # in--r1--mid--c1--out--r2--0: both sides of the cap reach
        # ground through a resistive branch, so one grounded component
        # plus the cut across c1.
        ckt = Circuit("t")
        ckt.add(VoltageSource("v1", "in", "0", dc=1.0))
        ckt.add(Resistor("r1", "in", "mid", 1e3))
        ckt.add(Capacitor("c1", "mid", "out", 1e-12))
        ckt.add(Resistor("r2", "out", "0", 1e3))
        comps = CircuitGraph(ckt).dc_components()
        assert len(comps) == 1
        assert comps[0] == {"0", "in", "mid", "out"}

    def test_dc_components_split_by_capacitors(self):
        # Caps on both sides of 'out': it has no DC path anywhere.
        ckt = Circuit("t2")
        ckt.add(VoltageSource("v1", "in", "0", dc=1.0))
        ckt.add(Resistor("r1", "in", "mid", 1e3))
        ckt.add(Capacitor("c1", "mid", "out", 1e-12))
        ckt.add(Capacitor("c2", "out", "0", 1e-12))
        comps = CircuitGraph(ckt).dc_components()
        assert {"out"} in comps

    def test_anchored_by_ground_and_external(self):
        g = CircuitGraph(rc_ladder(), external=["in"])
        assert g.anchored({"0", "x"})
        assert g.anchored({"in"})
        assert not g.anchored({"out", "x"})

    def test_repr(self):
        assert "3 devices" in repr(CircuitGraph(rc_ladder()))


class TestGenericLibrarySanity:
    def test_mos_divider_is_one_dc_component(self):
        cards = generic_018()
        ckt = Circuit("t", models=[cards["nch"]])
        ckt.add(VoltageSource("vdd", "vdd", "0", dc=1.8))
        ckt.add(Resistor("rd", "vdd", "d", 1e4))
        ckt.add(Mosfet("m1", "d", "g", "0", "0", "nch", w=1e-6, l=1e-6))
        ckt.add(VoltageSource("vg", "g", "0", dc=0.9))
        comps = CircuitGraph(ckt).dc_components()
        # The gate is driven by vg (a DC branch), so everything anchors.
        assert len(comps) == 1
