"""Level-1 MOSFET model: regions, body effect, symmetry, capacitances."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.spice import (
    Circuit,
    CurrentSource,
    Mosfet,
    VoltageSource,
    generic_018,
    operating_point,
)

CARDS = generic_018()


def mos_bias(vg, vd, vs=0.0, vb=0.0, model="nch", w=2e-6, l=1e-6):
    """Operating point of a single MOSFET with ideal bias sources."""
    ckt = Circuit("bias", models=CARDS.values())
    ckt.add(VoltageSource("vg", "g", "0", dc=vg))
    ckt.add(VoltageSource("vd", "d", "0", dc=vd))
    ckt.add(VoltageSource("vs", "s", "0", dc=vs))
    ckt.add(VoltageSource("vb", "b", "0", dc=vb))
    ckt.add(Mosfet("m1", "d", "g", "s", "b", model, w=w, l=l))
    op = operating_point(ckt)
    return op, op.mos_info()["m1"]


class TestRegions:
    def test_cutoff(self):
        _op, info = mos_bias(vg=0.2, vd=1.0)
        assert info["region"] == 0
        assert info["ids"] == pytest.approx(0.0, abs=1e-12)

    def test_saturation_square_law(self):
        _op, info = mos_bias(vg=1.0, vd=1.8)
        model = CARDS["nch"]
        vov = 1.0 - model.vto
        beta = model.kp * 2e-6 / 1e-6
        expected = 0.5 * beta * vov**2 * (1 + model.lambd * 1.8)
        assert info["region"] == 2
        assert info["ids"] == pytest.approx(expected, rel=1e-6)

    def test_triode(self):
        _op, info = mos_bias(vg=1.8, vd=0.1)
        model = CARDS["nch"]
        vov = 1.8 - model.vto
        beta = model.kp * 2.0
        expected = beta * (vov * 0.1 - 0.005) * (1 + model.lambd * 0.1)
        assert info["region"] == 1
        assert info["ids"] == pytest.approx(expected, rel=1e-6)

    def test_region_boundary_continuous(self):
        model = CARDS["nch"]
        vov = 1.0 - model.vto
        _op, lo = mos_bias(vg=1.0, vd=vov - 1e-6)
        _op, hi = mos_bias(vg=1.0, vd=vov + 1e-6)
        assert lo["ids"] == pytest.approx(hi["ids"], rel=1e-3)

    def test_pmos_polarity(self):
        _op, info = mos_bias(vg=0.8, vd=0.0, vs=1.8, vb=1.8, model="pch")
        assert info["region"] == 2
        assert info["vgs"] > 0  # NMOS-frame quantities
        # physical current flows source -> drain (into the drain node
        # from the supply through the channel): i(vd) sinks it
    def test_body_effect_raises_vt(self):
        _op, no_body = mos_bias(vg=1.0, vd=1.8, vs=0.0, vb=0.0)
        _op, body = mos_bias(vg=1.5, vd=1.8, vs=0.5, vb=0.0)
        # same vgs=1.0 but vsb=0.5 -> higher VT -> lower current
        assert body["ids"] < no_body["ids"]

    def test_drain_source_swap(self):
        """The device is symmetric: swapping D and S mirrors the
        current."""
        _op, fwd = mos_bias(vg=1.2, vd=0.3, vs=0.0)
        ckt = Circuit("rev", models=CARDS.values())
        ckt.add(VoltageSource("vg", "g", "0", dc=1.2))
        ckt.add(VoltageSource("vd", "d", "0", dc=0.3))
        # same device, terminals swapped
        ckt.add(Mosfet("m1", "0", "g", "d", "0", "nch", w=2e-6, l=1e-6))
        op = operating_point(ckt)
        rev_current = op.i("vd")
        # Same channel current magnitude; the source now *delivers* the
        # current into the (swapped) drain, so its branch current is
        # negative by the Spice passive convention.
        assert abs(rev_current) == pytest.approx(fwd["ids"], rel=1e-4)
        assert rev_current < 0

    @given(vg=st.floats(0.0, 1.8), vd=st.floats(0.0, 1.8))
    @settings(max_examples=30, deadline=None)
    def test_current_nonnegative_nmos(self, vg, vd):
        _op, info = mos_bias(vg=vg, vd=vd)
        assert info["ids"] >= -1e-12

    @given(vg=st.floats(0.6, 1.8))
    @settings(max_examples=20, deadline=None)
    def test_gm_positive_in_saturation(self, vg):
        _op, info = mos_bias(vg=vg, vd=1.8)
        assert info["gm"] > 0
        assert info["gds"] > 0


class TestCapacitances:
    def _caps(self, vg, vd):
        ckt = Circuit("c", models=CARDS.values())
        ckt.add(VoltageSource("vg", "g", "0", dc=vg))
        ckt.add(VoltageSource("vd", "d", "0", dc=vd))
        ckt.add(Mosfet("m1", "d", "g", "0", "0", "nch", w=2e-6, l=1e-6))
        op = operating_point(ckt)
        sys = op.system
        return sys.mos_group.capacitances(sys.full_vector(op.x))

    def test_cutoff_gate_bulk(self):
        caps = self._caps(vg=0.0, vd=1.0)
        assert caps["cgb"][0] > caps["cgs"][0]

    def test_saturation_cgs_dominates(self):
        caps = self._caps(vg=1.2, vd=1.8)
        assert caps["cgs"][0] > caps["cgd"][0]

    def test_triode_symmetric(self):
        caps = self._caps(vg=1.8, vd=0.05)
        assert caps["cgs"][0] == pytest.approx(caps["cgd"][0], rel=1e-9)

    def test_all_positive(self):
        caps = self._caps(vg=0.9, vd=0.9)
        for arr in caps.values():
            assert np.all(arr >= 0)
