"""The lint rule engine: every built-in rule, the registry, the report."""

import pytest

from repro.circuits import builtin_circuits
from repro.spice import (
    Circuit,
    NetlistLintError,
    Resistor,
    Subckt,
    VoltageSource,
    lint_circuit,
    lint_netlist,
    lint_subckt,
    preflight_check,
)
from repro.spice.devices import (
    Capacitor,
    CurrentSource,
    Diode,
    Mosfet,
    Vccs,
    Vcvs,
)
from repro.spice.library import generic_018
from repro.spice.lint import LintReport, Severity, all_rules, lint_rule
from repro.spice.lint.rules import _RULES, get_rules


def clean_rc():
    ckt = Circuit("rc")
    ckt.add(VoltageSource("v1", "in", "0", dc=1.0))
    ckt.add(Resistor("r1", "in", "out", 1e3))
    ckt.add(Resistor("r2", "out", "0", 1e3))
    ckt.add(Capacitor("c1", "out", "0", 1e-12))
    return ckt


def fired(report, rule_id):
    return [f for f in report.findings if f.rule_id == rule_id]


class TestCleanCircuit:
    def test_no_errors_on_clean_rc(self):
        report = lint_circuit(clean_rc())
        assert report.ok
        assert report.errors == ()
        assert report.n_devices == 4

    def test_preflight_returns_clean_report(self):
        report = preflight_check(clean_rc())
        assert report.ok


class TestGroundRule:
    def test_fires_without_ground(self):
        ckt = Circuit("t")
        ckt.add(Resistor("r1", "a", "b", 1.0))
        assert fired(lint_circuit(ckt), "SP-GND-001")

    def test_silent_on_empty_circuit(self):
        assert not fired(lint_circuit(Circuit("t")), "SP-GND-001")

    def test_silent_with_external_reference(self):
        # A stand-alone subckt body may ground itself through a port.
        ckt = Circuit("t")
        ckt.add(Resistor("r1", "a", "b", 1.0))
        report = lint_circuit(ckt, external=["a", "b"])
        assert not fired(report, "SP-GND-001")


class TestFloatingRule:
    def test_fires_on_degree_one(self):
        ckt = clean_rc()
        ckt.add(Resistor("rdang", "out", "hang", 1e3))
        findings = fired(lint_circuit(ckt), "SP-FLOAT-001")
        assert len(findings) == 1
        assert findings[0].nodes == ("hang",)
        assert findings[0].devices == ("rdang",)

    def test_ground_never_floats(self):
        ckt = Circuit("t")
        ckt.add(VoltageSource("v1", "a", "0", dc=1.0))
        ckt.add(Resistor("r1", "a", "0", 1.0))
        assert not fired(lint_circuit(ckt), "SP-FLOAT-001")

    def test_external_ports_exempt(self):
        ckt = Circuit("t")
        ckt.add(Resistor("r1", "port", "0", 1.0))
        assert fired(lint_circuit(ckt), "SP-FLOAT-001")
        assert not fired(lint_circuit(ckt, external=["port"]),
                         "SP-FLOAT-001")


class TestDcPathRule:
    def test_fires_on_cap_only_node(self):
        ckt = clean_rc()
        ckt.add(Capacitor("c2", "out", "iso", 1e-12))
        ckt.add(Capacitor("c3", "iso", "0", 1e-12))
        findings = fired(lint_circuit(ckt), "SP-DCPATH-001")
        assert len(findings) == 1
        assert "iso" in findings[0].nodes

    def test_fires_on_current_source_fed_node(self):
        # i1 pushes current into a node drained only by a capacitor.
        ckt = clean_rc()
        ckt.add(CurrentSource("i1", "0", "iso", dc=1e-3))
        ckt.add(Capacitor("c9", "iso", "0", 1e-12))
        assert fired(lint_circuit(ckt), "SP-DCPATH-001")

    def test_gate_only_net_fires(self):
        cards = generic_018()
        ckt = Circuit("t", models=[cards["nch"]])
        ckt.add(VoltageSource("vdd", "vdd", "0", dc=1.8))
        ckt.add(Resistor("rd", "vdd", "d", 1e4))
        ckt.add(Mosfet("m1", "d", "gate", "0", "0", "nch",
                       w=1e-6, l=1e-6))
        # The gate hangs off a capacitor instead of a driver.
        ckt.add(Capacitor("cg", "gate", "0", 1e-15))
        findings = fired(lint_circuit(ckt), "SP-DCPATH-001")
        assert len(findings) == 1
        assert "gate" in findings[0].nodes

    def test_clean_when_resistively_anchored(self):
        assert not fired(lint_circuit(clean_rc()), "SP-DCPATH-001")


class TestIslandRule:
    def test_fires_on_disconnected_ring(self):
        ckt = clean_rc()
        ckt.add(Resistor("ra", "x", "y", 1.0))
        ckt.add(Resistor("rb", "y", "z", 1.0))
        ckt.add(Resistor("rc_", "z", "x", 1.0))
        findings = fired(lint_circuit(ckt), "SP-ISLAND-001")
        assert len(findings) == 1
        assert findings[0].nodes == ("x", "y", "z")
        assert findings[0].devices == ("ra", "rb", "rc_")

    def test_capacitive_bridge_is_not_an_island(self):
        # Structurally connected through a cap: SP-DCPATH's business,
        # not SP-ISLAND's.
        ckt = clean_rc()
        ckt.add(Capacitor("cb", "out", "far", 1e-12))
        ckt.add(Resistor("rf", "far", "far2", 1.0))
        report = lint_circuit(ckt)
        assert not fired(report, "SP-ISLAND-001")
        assert fired(report, "SP-DCPATH-001")


class TestPortRule:
    def test_fires_on_unconnected_port(self):
        inner = Circuit("div")
        inner.add(Resistor("r1", "in", "out", 1.0))
        sub = Subckt(name="div", ports=["in", "out", "nc"], circuit=inner)
        host = Circuit("host")
        host.add_subckt(sub)
        findings = fired(lint_circuit(host), "SP-PORT-001")
        assert len(findings) == 1
        assert findings[0].nodes == ("nc",)
        assert "'nc'" in findings[0].message

    def test_clean_definition_passes(self):
        inner = Circuit("div")
        inner.add(Resistor("r1", "in", "out", 1.0))
        sub = Subckt(name="div", ports=["in", "out"], circuit=inner)
        host = Circuit("host")
        host.add_subckt(sub)
        assert not fired(lint_circuit(host), "SP-PORT-001")


class TestShortRules:
    def test_shorted_resistor_warns(self):
        ckt = clean_rc()
        ckt.add(Resistor("rs", "out", "out", 1.0))
        findings = fired(lint_circuit(ckt), "SP-SHORT-001")
        assert len(findings) == 1
        assert findings[0].severity == Severity.WARN

    def test_shorted_voltage_source_errors(self):
        ckt = clean_rc()
        ckt.add(VoltageSource("vs", "out", "out", dc=1.0))
        findings = fired(lint_circuit(ckt), "SP-SHORT-002")
        assert len(findings) == 1
        assert findings[0].severity == Severity.ERROR
        assert not fired(lint_circuit(ckt), "SP-SHORT-001")


class TestValueRule:
    def test_fires_on_nonpositive_resistance(self):
        ckt = clean_rc()
        ckt.add(Resistor("rneg", "in", "out", 1.0))
        # The ctor forbids non-positive values, so corrupt the stored
        # copy directly: the rule is defense in depth for netlists that
        # arrive through deserialization or future device types.
        object.__setattr__(ckt.device("rneg"), "value", -5.0)
        findings = fired(lint_circuit(ckt), "SP-VALUE-001")
        assert len(findings) == 1
        assert findings[0].devices == ("rneg",)


class TestVoltageLoopRule:
    def test_parallel_sources_fire(self):
        ckt = Circuit("t")
        ckt.add(VoltageSource("v1", "a", "0", dc=1.0))
        ckt.add(VoltageSource("v2", "a", "0", dc=2.0))
        ckt.add(Resistor("r1", "a", "0", 1.0))
        assert fired(lint_circuit(ckt), "SP-VLOOP-001")

    def test_vcvs_closing_loop_fires(self):
        ckt = Circuit("t")
        ckt.add(VoltageSource("v1", "a", "0", dc=1.0))
        ckt.add(Vcvs("e1", "a", "0", "a", "0", gain=2.0))
        ckt.add(Resistor("r1", "a", "0", 1.0))
        assert fired(lint_circuit(ckt), "SP-VLOOP-001")

    def test_series_sources_pass(self):
        ckt = Circuit("t")
        ckt.add(VoltageSource("v1", "a", "0", dc=1.0))
        ckt.add(VoltageSource("v2", "b", "a", dc=1.0))
        ckt.add(Resistor("r1", "b", "0", 1.0))
        assert not fired(lint_circuit(ckt), "SP-VLOOP-001")


class TestCurrentCutsetRule:
    def test_series_current_sources_fire(self):
        # mid sits between two current sources: KCL can't balance
        # arbitrary values.
        ckt = Circuit("t")
        ckt.add(VoltageSource("v1", "a", "0", dc=1.0))
        ckt.add(Resistor("r1", "a", "0", 1.0))
        ckt.add(CurrentSource("i1", "a", "mid", dc=1e-3))
        ckt.add(CurrentSource("i2", "mid", "0", dc=2e-3))
        findings = fired(lint_circuit(ckt), "SP-ICUT-001")
        assert len(findings) == 1
        assert findings[0].nodes == ("mid",)
        assert findings[0].devices == ("i1", "i2")

    def test_vccs_counts_as_current_source(self):
        ckt = Circuit("t")
        ckt.add(VoltageSource("v1", "a", "0", dc=1.0))
        ckt.add(Resistor("r1", "a", "0", 1.0))
        ckt.add(Vccs("g1", "a", "mid", "a", "0", gain=1e-3))
        ckt.add(CurrentSource("i2", "mid", "0", dc=2e-3))
        assert fired(lint_circuit(ckt), "SP-ICUT-001")

    def test_resistor_in_parallel_passes(self):
        ckt = Circuit("t")
        ckt.add(VoltageSource("v1", "a", "0", dc=1.0))
        ckt.add(Resistor("r1", "a", "0", 1.0))
        ckt.add(CurrentSource("i1", "a", "mid", dc=1e-3))
        ckt.add(Resistor("rm", "mid", "0", 1e3))
        assert not fired(lint_circuit(ckt), "SP-ICUT-001")


class TestModelRules:
    def test_missing_model_errors(self):
        ckt = clean_rc()
        ckt.add(Diode("d1", "in", "out", "nope"))
        findings = fired(lint_circuit(ckt), "SP-MODEL-001")
        assert len(findings) == 1
        assert "'nope'" in findings[0].message

    def test_unused_model_is_info(self):
        cards = generic_018()
        ckt = Circuit("t", models=[cards["nch"]])
        ckt.add(VoltageSource("v1", "a", "0", dc=1.0))
        ckt.add(Resistor("r1", "a", "0", 1.0))
        findings = fired(lint_circuit(ckt), "SP-UNUSED-001")
        assert len(findings) == 1
        assert findings[0].severity == Severity.INFO

    def test_unused_subckt_is_info(self):
        inner = Circuit("x")
        inner.add(Resistor("r1", "a", "b", 1.0))
        host = clean_rc()
        host.add_subckt(Subckt(name="spare", ports=["a", "b"],
                               circuit=inner))
        findings = fired(lint_circuit(host), "SP-UNUSED-002")
        assert len(findings) == 1
        host.instantiate("x1", "spare", ["in", "out"])
        assert not fired(lint_circuit(host), "SP-UNUSED-002")


class TestRegistry:
    def test_all_rules_have_stable_ids(self):
        ids = [r.rule_id for r in all_rules()]
        assert len(ids) == len(set(ids))
        for required in ("SP-GND-001", "SP-FLOAT-001", "SP-DCPATH-001",
                         "SP-ISLAND-001", "SP-PORT-001", "SP-SHORT-001",
                         "SP-SHORT-002", "SP-VALUE-001", "SP-VLOOP-001",
                         "SP-ICUT-001"):
            assert required in ids

    def test_get_rules_unknown_id(self):
        with pytest.raises(KeyError, match="SP-NOPE-001"):
            get_rules(["SP-NOPE-001"])

    def test_get_rules_severity_floor(self):
        errors = get_rules(min_severity=Severity.ERROR)
        assert errors
        assert all(r.severity == Severity.ERROR for r in errors)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="SP-GND-001"):
            @lint_rule("SP-GND-001", Severity.WARN, "dup")
            def _dup(graph):
                return iter(())

    def test_custom_rule_runs(self):
        @lint_rule("SP-TEST-900", Severity.WARN, "test-only rule")
        def _test_rule(graph):
            yield "always fires", (), ()

        try:
            report = lint_circuit(clean_rc())
            assert fired(report, "SP-TEST-900")
        finally:
            del _RULES["SP-TEST-900"]


class TestSeverity:
    def test_ordering(self):
        assert Severity.ERROR > Severity.WARN > Severity.INFO

    def test_labels_round_trip(self):
        for sev in Severity:
            assert Severity.from_label(sev.label) is sev

    def test_unknown_label(self):
        with pytest.raises(ValueError, match="fatal"):
            Severity.from_label("fatal")


class TestReport:
    def _broken(self):
        ckt = clean_rc()
        ckt.add(Resistor("rdang", "out", "hang", 1e3))
        ckt.add(Resistor("rs", "out", "out", 1.0))
        return lint_circuit(ckt)

    def test_findings_sorted_most_severe_first(self):
        report = self._broken()
        sevs = [f.severity for f in report.findings]
        assert sevs == sorted(sevs, reverse=True)

    def test_queries(self):
        report = self._broken()
        assert not report.ok
        assert report.worst() == Severity.ERROR
        assert report.counts()["error"] == len(report.errors)
        assert len(report.at_least(Severity.WARN)) == (
            len(report.errors) + len(report.warnings))

    def test_format_text(self):
        text = self._broken().format_text()
        assert "SP-FLOAT-001" in text
        assert "result: FAIL" in text
        clean = lint_circuit(clean_rc()).format_text()
        assert "result: CLEAN" in clean

    def test_json_round_trip(self):
        report = self._broken()
        again = LintReport.from_json(report.to_json())
        assert again == report
        assert isinstance(again.findings[0].severity, Severity)

    def test_from_json_rejects_foreign_payload(self):
        with pytest.raises(ValueError):
            LintReport.from_json('{"x": 1}')


class TestEntryPoints:
    def test_lint_netlist(self):
        report = lint_netlist(
            "t\nv1 in 0 dc 1\nr1 in out 1k\nr2 out 0 1k\n")
        assert report.ok
        assert report.circuit == "t"

    def test_lint_subckt_ports_external(self):
        inner = Circuit("div")
        inner.add(Resistor("r1", "in", "mid", 1.0))
        inner.add(Resistor("r2", "mid", "out", 1.0))
        sub = Subckt(name="div", ports=["in", "out"], circuit=inner)
        report = lint_subckt(sub)
        # No ground inside, ports dangle at degree 1: all excused
        # because the ports are externally driven.
        assert report.ok

    def test_preflight_raises_with_rule_and_nodes(self):
        ckt = clean_rc()
        ckt.add(Resistor("rdang", "out", "hang", 1e3))
        with pytest.raises(NetlistLintError, match="SP-FLOAT-001") as exc:
            preflight_check(ckt)
        assert "hang" in str(exc.value)
        assert exc.value.report is not None
        assert not exc.value.report.ok

    def test_preflight_ignores_warnings(self):
        ckt = clean_rc()
        ckt.add(Resistor("rs", "out", "out", 1.0))  # warn-level short
        report = preflight_check(ckt)
        assert report.ok

    def test_min_severity_filter(self):
        ckt = clean_rc()
        ckt.add(Resistor("rs", "out", "out", 1.0))
        report = lint_circuit(ckt, min_severity=Severity.ERROR)
        assert not fired(report, "SP-SHORT-001")


class TestBuiltinCircuitsCertified:
    @pytest.mark.parametrize("name", sorted(builtin_circuits()))
    def test_builtin_lints_clean(self, name):
        built = builtin_circuits()[name]()
        if isinstance(built, Subckt):
            report = lint_subckt(built)
        else:
            report = lint_circuit(built)
        assert report.errors == (), report.format_text()
        assert report.warnings == (), report.format_text()
