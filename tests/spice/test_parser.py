"""Spice-format netlist parser."""

import math

import pytest

from repro.spice import parse_netlist
from repro.spice.devices import (
    Capacitor,
    CurrentSource,
    Diode,
    Inductor,
    Mosfet,
    Pulse,
    Pwl,
    Resistor,
    Sin,
    Vccs,
    Vcvs,
    VoltageSource,
    VSwitch,
)
from repro.spice.errors import ParseError
from repro.spice.library import GENERIC_018_CARDS


class TestBasics:
    def test_title_line(self):
        ckt = parse_netlist("my title\nr1 a 0 1k\n")
        assert ckt.title == "my title"
        assert len(ckt) == 1

    def test_no_title_mode(self):
        ckt = parse_netlist("r1 a 0 1k\n", title_line=False)
        assert len(ckt) == 1

    def test_comments_and_blank_lines(self):
        text = """title
* a comment
r1 a 0 1k  ; trailing comment

r2 a 0 2k $ another
"""
        ckt = parse_netlist(text)
        assert len(ckt) == 2

    def test_continuation_lines(self):
        text = "title\nr1 a\n+ 0\n+ 1k\n"
        ckt = parse_netlist(text)
        assert ckt.device("r1").value == 1000.0

    def test_continuation_without_start_fails(self):
        with pytest.raises(ParseError):
            parse_netlist("+ 0 1k\n", title_line=False)

    def test_end_card_ignored(self):
        ckt = parse_netlist("t\nr1 a 0 1\n.end\n")
        assert len(ckt) == 1

    def test_unknown_directive(self):
        with pytest.raises(ParseError):
            parse_netlist("t\n.tran 1n 1u\n")

    def test_line_number_in_error(self):
        with pytest.raises(ParseError) as exc:
            parse_netlist("t\nr1 a 0 1k\nq5 a b c\n")
        assert "line 3" in str(exc.value)


class TestElements:
    def test_all_two_terminal(self):
        text = """t
r1 a 0 1k
c1 a 0 1p
l1 a 0 1n
c2 a 0 1p ic=0.5
"""
        ckt = parse_netlist(text)
        assert isinstance(ckt.device("r1"), Resistor)
        assert isinstance(ckt.device("c1"), Capacitor)
        assert isinstance(ckt.device("l1"), Inductor)
        assert ckt.device("c2").ic == 0.5

    def test_controlled_sources(self):
        text = "t\ne1 o 0 a b 10\ng1 o 0 a b 1m\n"
        ckt = parse_netlist(text)
        assert isinstance(ckt.device("e1"), Vcvs)
        assert ckt.device("e1").gain == 10.0
        assert isinstance(ckt.device("g1"), Vccs)
        assert ckt.device("g1").gain == 1e-3

    def test_mosfet(self):
        text = ("t\n.model nch nmos (vto=0.4 kp=200u)\n"
                "m1 d g 0 0 nch w=10u l=0.18u m=2\n")
        ckt = parse_netlist(text)
        m = ckt.device("m1")
        assert isinstance(m, Mosfet)
        assert m.w == pytest.approx(10e-6)
        assert m.l == pytest.approx(0.18e-6)
        assert m.m == 2.0

    def test_mosfet_missing_wl(self):
        with pytest.raises(ParseError):
            parse_netlist("t\nm1 d g 0 0 nch\n")

    def test_diode_and_switch(self):
        text = ("t\n.model dm d (is=1e-15)\n.model sw1 sw (ron=10)\n"
                "d1 a 0 dm\ns1 a 0 c 0 sw1\n")
        ckt = parse_netlist(text)
        assert isinstance(ckt.device("d1"), Diode)
        assert isinstance(ckt.device("s1"), VSwitch)

    def test_too_few_fields(self):
        with pytest.raises(ParseError):
            parse_netlist("t\nr1 a\n")


class TestSources:
    def test_dc_forms(self):
        ckt = parse_netlist("t\nv1 a 0 5\nv2 b 0 dc 3\ni1 a 0 1m\n")
        assert ckt.device("v1").dc == 5.0
        assert ckt.device("v2").dc == 3.0
        assert ckt.device("i1").dc == 1e-3

    def test_ac_spec(self):
        ckt = parse_netlist("t\nv1 a 0 dc 1 ac 2 45\n")
        v = ckt.device("v1")
        assert v.ac_mag == 2.0
        assert v.ac_phase == 45.0

    def test_pulse(self):
        ckt = parse_netlist("t\nv1 a 0 pulse(0 1.8 1n 0.1n 0.1n 5n 10n)\n")
        wave = ckt.device("v1").wave
        assert isinstance(wave, Pulse)
        assert wave.v2 == 1.8
        assert wave.per == 10e-9

    def test_pulse_defaults(self):
        ckt = parse_netlist("t\nv1 a 0 pulse(0 1)\n")
        assert math.isinf(ckt.device("v1").wave.per)

    def test_sin(self):
        ckt = parse_netlist("t\nv1 a 0 sin(0 1 1meg)\n")
        wave = ckt.device("v1").wave
        assert isinstance(wave, Sin)
        assert wave.freq == 1e6

    def test_pwl(self):
        ckt = parse_netlist("t\nv1 a 0 pwl(0 0 1n 1 2n 0)\n")
        wave = ckt.device("v1").wave
        assert isinstance(wave, Pwl)
        assert wave.value(0.5e-9) == pytest.approx(0.5)

    def test_pwl_odd_values_rejected(self):
        with pytest.raises(ParseError):
            parse_netlist("t\nv1 a 0 pwl(0 0 1n)\n")


class TestParamsAndExpressions:
    def test_param_use(self):
        text = "t\n.param rr=2k cc={1p*2}\nr1 a 0 rr\nc1 a 0 cc\n"
        ckt = parse_netlist(text)
        assert ckt.device("r1").value == 2000.0
        assert ckt.device("c1").value == pytest.approx(2e-12)

    def test_expression_with_suffix_literals(self):
        ckt = parse_netlist("t\nr1 a 0 {10k/2}\n")
        assert ckt.device("r1").value == pytest.approx(5000.0)

    def test_expression_functions(self):
        ckt = parse_netlist("t\nr1 a 0 {sqrt(4)*1k}\n")
        assert ckt.device("r1").value == pytest.approx(2000.0)

    def test_quoted_expression(self):
        ckt = parse_netlist("t\n.param x=3\nr1 a 0 'x*1k'\n")
        assert ckt.device("r1").value == 3000.0

    def test_bad_expression(self):
        with pytest.raises(ParseError):
            parse_netlist("t\nr1 a 0 {nope+1}\n")


class TestModelsAndSubckts:
    def test_library_cards_parse(self):
        ckt = parse_netlist("cards\n" + GENERIC_018_CARDS)
        assert set(ckt.models) >= {"nch", "pch", "nch_lv", "pch_lv"}
        assert ckt.models["nch"].vto == pytest.approx(0.45)
        assert ckt.models["pch"].lambd == pytest.approx(0.26)

    def test_unknown_model_param(self):
        with pytest.raises(ParseError):
            parse_netlist("t\n.model bad nmos (wobble=3)\n")

    def test_unsupported_model_type(self):
        with pytest.raises(ParseError):
            parse_netlist("t\n.model bad npn (bf=100)\n")

    def test_subckt_roundtrip(self):
        text = """t
.subckt div in out
r1 in out 1k
r2 out 0 1k
.ends
x1 a b div
"""
        ckt = parse_netlist(text)
        assert ckt.device("x1.r1").nodes == ("a", "b")
        assert ckt.device("x1.r2").nodes == ("b", "0")

    def test_subckt_missing_ends(self):
        with pytest.raises(ParseError):
            parse_netlist("t\n.subckt div a b\nr1 a b 1\n")

    def test_nested_subckt_definition_rejected(self):
        text = "t\n.subckt a x\n.subckt b y\n.ends\n.ends\n"
        with pytest.raises(ParseError):
            parse_netlist(text)

    def test_subckt_instantiating_subckt(self):
        text = """t
.subckt unit a b
r1 a b 1k
.ends
.subckt pair p q
x1 p m unit
x2 m q unit
.ends
xtop n1 n2 pair
"""
        ckt = parse_netlist(text)
        assert ckt.device("xtop.x1.r1").nodes == ("n1", "xtop.m")
        assert ckt.device("xtop.x2.r1").nodes == ("xtop.m", "n2")


class TestEdgeCases:
    """Corner cases of real-world deck formatting."""

    def test_title_may_be_a_comment(self):
        # Classic Spice: the first raw line is the title even when it
        # looks like a comment; the first element must NOT be eaten.
        text = "* extracted by hand\nv1 in 0 dc 1\nr1 in 0 1k\n"
        ckt = parse_netlist(text)
        assert ckt.title == "* extracted by hand"
        assert len(ckt) == 2
        assert ckt.device("v1").dc == 1.0

    def test_continuations_interleaved_with_comments(self):
        text = """title
r1 a
* resistance chosen per figure 4
+ 0
; units: ohms
+ 1k
r2 a 0 2k
"""
        ckt = parse_netlist(text)
        assert ckt.device("r1").nodes == ("a", "0")
        assert ckt.device("r1").value == 1000.0
        assert len(ckt) == 2

    def test_continuation_across_blank_line(self):
        ckt = parse_netlist("title\nr1 a\n\n+ 0 1k\n")
        assert ckt.device("r1").value == 1000.0

    def test_subckt_directives_case_insensitive(self):
        text = """t
.SUBCKT DIV IN OUT
R1 IN OUT 1K
.ENDS
Xdiv n1 n2 div
"""
        ckt = parse_netlist(text)
        assert "div" in ckt.subckts
        assert ckt.device("xdiv.r1").nodes == ("n1", "n2")

    def test_mixed_case_ends_with_name(self):
        text = "t\n.SubCkt u a\nr1 a 0 1\n.EnDs U\nxu n u\n"
        ckt = parse_netlist(text)
        assert len(ckt) == 1

    def test_duplicate_device_name_is_parse_error(self):
        with pytest.raises(ParseError) as exc:
            parse_netlist("t\nr1 a 0 1k\nr1 a 0 2k\n")
        msg = str(exc.value)
        assert "line 3" in msg
        assert "r1" in msg

    def test_duplicate_differs_only_by_case(self):
        with pytest.raises(ParseError):
            parse_netlist("t\nr1 a 0 1k\nR1 b 0 2k\n")

    def test_spice_parser_error_alias(self):
        # SpiceParserError is the conventional name other tools use.
        from repro.spice import SpiceParserError

        assert SpiceParserError is ParseError
        with pytest.raises(SpiceParserError):
            parse_netlist("t\nr1 a 0 1k\nr1 a 0 2k\n")
