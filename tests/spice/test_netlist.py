"""Circuit and subcircuit data model."""

import pytest

from repro.spice import Circuit, Resistor, Subckt, VoltageSource
from repro.spice.devices import Capacitor, Mosfet
from repro.spice.errors import NetlistError
from repro.spice.library import generic_018
from repro.spice.netlist import is_ground, normalize_node


class TestNodes:
    @pytest.mark.parametrize(
        "alias", ["0", "gnd", "GND", "Gnd", "gnd!", "GND!", "vss!", "VSS!"])
    def test_ground_aliases(self, alias):
        assert is_ground(alias)
        assert normalize_node(alias) == "0"

    @pytest.mark.parametrize("node", ["vss", "vdd", "out", "agnd", "gnd2"])
    def test_non_ground_nodes(self, node):
        assert not is_ground(node)
        assert normalize_node(node) == node.lower()

    def test_ground_aliases_unify_in_circuit(self):
        # All spellings land on the single net "0": a device wired to
        # GND and one wired to vss! share a node.
        ckt = Circuit("t")
        ckt.add(Resistor("r1", "a", "GND", 1.0))
        ckt.add(Resistor("r2", "a", "vss!", 1.0))
        assert ckt.node_names() == ["a"]
        assert ckt.device("r1").nodes[1] == "0"
        assert ckt.device("r2").nodes[1] == "0"

    def test_case_insensitive_nodes(self):
        ckt = Circuit("t")
        ckt.add(Resistor("R1", "OUT", "0", 1.0))
        assert ckt.node_names() == ["out"]


class TestCircuit:
    def test_duplicate_device_rejected(self):
        ckt = Circuit("t")
        ckt.add(Resistor("r1", "a", "0", 1.0))
        with pytest.raises(NetlistError):
            ckt.add(Resistor("R1", "b", "0", 1.0))

    def test_device_lookup(self):
        ckt = Circuit("t")
        ckt.add(Resistor("r1", "a", "0", 1.0))
        assert ckt.device("R1").value == 1.0
        with pytest.raises(NetlistError):
            ckt.device("nope")

    def test_devices_of(self):
        ckt = Circuit("t")
        ckt.add(Resistor("r1", "a", "0", 1.0),
                VoltageSource("v1", "a", "0", dc=1.0))
        assert len(ckt.devices_of(Resistor)) == 1
        assert len(ckt.devices_of(VoltageSource)) == 1

    def test_replace_device(self):
        ckt = Circuit("t")
        ckt.add(Resistor("r1", "a", "0", 1.0))
        ckt.replace_device(Resistor("r1", "a", "0", 2.0))
        assert ckt.device("r1").value == 2.0
        with pytest.raises(NetlistError):
            ckt.replace_device(Resistor("r9", "a", "0", 2.0))

    def test_validate_requires_ground(self):
        # validate() is now a deprecation shim over the lint engine's
        # ground rule; it must still raise, and must warn.
        ckt = Circuit("t")
        ckt.add(Resistor("r1", "a", "b", 1.0))
        with pytest.warns(DeprecationWarning, match="lint"):
            with pytest.raises(NetlistError):
                ckt.validate()

    def test_validate_shim_passes_grounded(self):
        ckt = Circuit("t")
        ckt.add(Resistor("r1", "a", "0", 1.0))
        with pytest.warns(DeprecationWarning):
            ckt.validate()

    def test_model_conflict(self):
        cards = generic_018()
        ckt = Circuit("t", models=[cards["nch"]])
        ckt.add_model(cards["nch"])  # identical: fine
        from repro.spice.devices import MosModel
        with pytest.raises(NetlistError):
            ckt.add_model(MosModel(name="nch", vto=0.1))

    def test_len_and_repr(self):
        ckt = Circuit("t")
        ckt.add(Resistor("r1", "a", "0", 1.0))
        assert len(ckt) == 1
        assert "1 devices" in repr(ckt)


class TestSubckt:
    def _divider(self) -> Subckt:
        inner = Circuit("divider")
        inner.add(Resistor("r1", "in", "mid", 1e3))
        inner.add(Resistor("r2", "mid", "gnd", 1e3))
        return Subckt(name="div", ports=["in", "mid"], circuit=inner)

    def test_flatten_renames_internals(self):
        top = Circuit("top")
        top.add_subckt(self._divider())
        top.add(VoltageSource("v1", "vin", "0", dc=1.0))
        top.instantiate("x1", "div", ["vin", "vout"])
        names = {d.name for d in top.devices}
        assert "x1.r1" in names and "x1.r2" in names
        r1 = top.device("x1.r1")
        assert r1.nodes == ("vin", "vout")
        # ground stays global
        r2 = top.device("x1.r2")
        assert r2.nodes == ("vout", "0")

    def test_port_count_mismatch(self):
        top = Circuit("top")
        top.add_subckt(self._divider())
        with pytest.raises(NetlistError):
            top.instantiate("x1", "div", ["a"])

    def test_unknown_subckt(self):
        top = Circuit("top")
        with pytest.raises(NetlistError):
            top.instantiate("x1", "nope", ["a", "b"])

    def test_duplicate_ports_rejected(self):
        with pytest.raises(NetlistError):
            Subckt(name="bad", ports=["a", "a"], circuit=Circuit("x"))

    def test_models_merged(self):
        cards = generic_018()
        inner = Circuit("amp", models=[cards["nch"]])
        inner.add(Mosfet("m1", "d", "g", "gnd", "gnd", "nch",
                         w=1e-6, l=1e-6))
        sub = Subckt(name="amp", ports=["d", "g"], circuit=inner)
        top = Circuit("top")
        top.add_subckt(sub)
        top.instantiate("x1", "amp", ["n1", "n2"])
        assert "nch" in top.models

    def test_two_instances_are_independent(self):
        top = Circuit("top")
        top.add_subckt(self._divider())
        top.instantiate("x1", "div", ["a", "b"])
        top.instantiate("x2", "div", ["b", "c"])
        assert len(top.devices) == 4
        assert top.device("x2.r1").nodes == ("b", "c")
