"""Import-order safety of the observability package.

The instrumented AMS engines import ``repro.obs`` at module scope, so
``repro.obs.__init__`` must not eagerly pull the export layer:
``repro.obs.export`` -> ``repro.core.serialization`` -> the
``repro.core`` package __init__ -> ``repro.uwb.integrator``, which is
a cycle when ``repro.uwb`` is the very first import of the process.
The export symbols load lazily on first attribute access instead.
"""

import os
import pathlib
import subprocess
import sys


def _run(code: str) -> str:
    repo = pathlib.Path(__file__).resolve().parents[2]
    env = dict(os.environ)
    env["PYTHONPATH"] = str(repo / "src") + os.pathsep + \
        env.get("PYTHONPATH", "")
    proc = subprocess.run([sys.executable, "-c", code],
                          capture_output=True, text=True, timeout=120,
                          env=env)
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


def test_uwb_first_import_does_not_cycle():
    out = _run("import repro.uwb\n"
               "from repro.obs import format_bytes\n"
               "print(format_bytes(1536))\n")
    assert out.strip() == "1.5 KiB"


def test_obs_first_import_still_exports_everything():
    out = _run("from repro.obs import (TraceReport, export,\n"
               "                       format_bytes, render_trace)\n"
               "import repro.obs\n"
               "print(format_bytes(2048), export.TRACE_FORMAT)\n")
    assert out.strip() == "2.0 KiB repro.trace/1"


def test_unknown_attribute_raises_attribute_error():
    out = _run("import repro.obs\n"
               "try:\n"
               "    repro.obs.nonsense\n"
               "except AttributeError:\n"
               "    print('ok')\n")
    assert out.strip() == "ok"
