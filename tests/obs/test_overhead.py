"""Pinned overhead and coverage guarantees of the tracing layer.

Two acceptance properties of repro.obs:

* **Disabled cost.** The instrumented chunk loop with tracing off
  must cost within 2% of the bare stage loop - the dual-path in
  ``SignalPipeline.run_chunk`` reduces the disabled overhead to one
  module attribute load and one branch per chunk.
* **Enabled coverage.** A traced fig6 fast-scale run must produce a
  span tree whose leaf (per-stage) walls sum to within 10% of the
  traced total wall - the instrumentation actually covers the hot
  path, not a corner of it.
"""

import time

import numpy as np
import pytest

from repro.experiments import run_fig6
from repro.link import LinkSpec, build_link_pipeline, calibrate
from repro.link.pipeline import LinkState
from repro.obs import trace
from repro.uwb.config import TEST_CONFIG
from repro.uwb.integrator import IdealIntegrator


@pytest.fixture(autouse=True)
def _tracing_disabled():
    trace.disable()
    trace.reset()
    yield
    trace.disable()
    trace.reset()


def _pipeline():
    cache = calibrate(LinkSpec(config=TEST_CONFIG))
    return build_link_pipeline(
        TEST_CONFIG, integrator=IdealIntegrator(), bpf=cache.bpf,
        sigma=0.4, scale=1.0)


def _bare_chunk(pipeline, n, rng):
    """The uninstrumented chunk loop: exactly ``run_chunk`` minus the
    ``trace.ENABLED`` dual-path (the overhead being measured)."""
    state = LinkState(n=n, rng=rng, sigmas=None)
    for stage in pipeline.stages:
        stage.process(state)
    return state


def _best_of(fn, repeats, chunks, n, pipeline):
    """Min wall over *repeats* timed runs of *chunks* chunks each.

    The min filters scheduler noise; identical per-run seeding keeps
    the arithmetic identical between the two variants."""
    best = float("inf")
    for rep in range(repeats):
        rng = np.random.default_rng(1234 + rep)
        start = time.perf_counter()
        for _ in range(chunks):
            fn(pipeline, n, rng)
        best = min(best, time.perf_counter() - start)
    return best


class TestDisabledOverhead:
    def test_disabled_chunk_loop_overhead_under_2_percent(self):
        """The pinned microbenchmark: ``run_chunk`` with tracing
        disabled vs the bare stage loop, interleaved best-of-k."""
        assert not trace.ENABLED
        pipeline = _pipeline()
        n, chunks, repeats = 400, 4, 5
        # Warm both paths (filter design, allocator, caches).
        _bare_chunk(pipeline, n, np.random.default_rng(0))
        pipeline.run_chunk(n, np.random.default_rng(0))
        bare = _best_of(_bare_chunk, repeats, chunks, n, pipeline)
        instrumented = _best_of(
            lambda p, n_, rng: p.run_chunk(n_, rng),
            repeats, chunks, n, pipeline)
        # One attribute load + one branch per chunk against ~ms of
        # numpy work; 2% relative with a 100 us jitter floor so the
        # assert pins the contract without flaking on a busy box.
        budget = max(bare * 1.02, bare + 100e-6)
        assert instrumented <= budget, (
            f"disabled-tracing chunk loop cost {instrumented * 1e3:.3f} ms "
            f"vs bare {bare * 1e3:.3f} ms (budget {budget * 1e3:.3f} ms)")

    def test_disabled_run_records_no_spans(self):
        pipeline = _pipeline()
        pipeline.run_chunk(64, np.random.default_rng(3))
        assert trace.current_root().children == {}


class TestEnabledCoverage:
    def test_fig6_fast_stage_walls_explain_the_total_wall(self):
        """Acceptance: the fig6 fast-scale span tree's per-stage walls
        sum to within 10% of the traced total wall."""
        with trace.collect("fig6") as root:
            run_fig6(ebn0_grid=(2, 6, 10, 14), quick=True, seed=7)
        walls = root.leaf_walls()
        assert walls, "traced fig6 produced no leaf spans"
        # The five pipeline stages all report.
        for name in ("link.tx", "link.channel", "link.combine",
                     "link.afe", "link.decision"):
            assert name in walls, f"missing stage span {name}"
        explained = sum(walls.values())
        assert explained <= root.total_s * 1.001
        assert explained >= 0.90 * root.total_s, (
            f"stage walls explain only "
            f"{100 * explained / root.total_s:.1f}% of the traced wall")
        assert root.coverage() == pytest.approx(
            explained / root.total_s)
