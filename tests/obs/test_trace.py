"""The hierarchical span tracer (repro.obs.trace).

The contracts under test: same-name spans aggregate instead of
growing the tree, the disabled path is a shared no-op, span trees are
thread-local, exceptions still close spans, and a TraceReport
round-trips through the tagged JSON document.
"""

import threading
import time

import pytest

from repro.obs import trace
from repro.obs.export import TRACE_FORMAT, TraceReport, render_trace
from repro.obs.metrics import MetricsRegistry


@pytest.fixture(autouse=True)
def _clean_tracer():
    """Every test starts disabled with a fresh thread-local tree."""
    trace.disable()
    trace.reset()
    yield
    trace.disable()
    trace.reset()


class TestSpanTree:
    def test_nested_spans_build_a_tree(self):
        with trace.collect("root") as root:
            with trace.span("outer"):
                with trace.span("inner"):
                    pass
        outer = root.children["outer"]
        assert outer.count == 1
        assert list(outer.children) == ["inner"]
        assert outer.children["inner"].count == 1

    def test_same_name_spans_aggregate(self):
        """A hot loop entering one span N times produces one node
        carrying count=N, not N nodes."""
        with trace.collect("root") as root:
            for _ in range(1000):
                with trace.span("chunk"):
                    pass
        assert list(root.children) == ["chunk"]
        assert root.children["chunk"].count == 1000

    def test_same_name_under_different_parents_stay_separate(self):
        with trace.collect("root") as root:
            with trace.span("a"):
                with trace.span("work"):
                    pass
            with trace.span("b"):
                with trace.span("work"):
                    pass
        assert root.children["a"].children["work"].count == 1
        assert root.children["b"].children["work"].count == 1

    def test_span_accumulates_wall_time(self):
        with trace.collect("root") as root:
            with trace.span("sleep"):
                time.sleep(0.01)
        node = root.children["sleep"]
        assert node.total_s >= 0.009
        assert root.total_s >= node.total_s

    def test_exception_still_closes_the_span(self):
        with trace.collect("root") as root:
            with pytest.raises(ValueError):
                with trace.span("boom"):
                    raise ValueError("bang")
            # The stack unwound: the next span is a sibling, not a
            # child of the failed one.
            with trace.span("after"):
                pass
        assert root.children["boom"].count == 1
        assert "after" in root.children
        assert "after" not in root.children["boom"].children

    def test_leaf_walls_never_double_count(self):
        """Interior spans wrap their leaves; only leaves are summed."""
        with trace.collect("root") as root:
            with trace.span("outer"):
                with trace.span("leaf_a"):
                    time.sleep(0.002)
                with trace.span("leaf_b"):
                    time.sleep(0.002)
        walls = root.leaf_walls()
        assert set(walls) == {"leaf_a", "leaf_b"}
        assert sum(walls.values()) <= root.total_s

    def test_leaf_walls_merge_same_leaf_across_parents(self):
        with trace.collect("root") as root:
            with trace.span("a"):
                with trace.span("work"):
                    pass
            with trace.span("b"):
                with trace.span("work"):
                    pass
        walls = root.leaf_walls()
        expected = (root.children["a"].children["work"].total_s
                    + root.children["b"].children["work"].total_s)
        assert walls["work"] == pytest.approx(expected)

    def test_coverage_is_leaf_share_of_root_wall(self):
        with trace.collect("root") as root:
            with trace.span("timed"):
                time.sleep(0.005)
        cov = root.coverage()
        assert 0.0 < cov <= 1.0
        assert cov == pytest.approx(
            sum(root.leaf_walls().values()) / root.total_s)

    def test_find_walks_depth_first(self):
        with trace.collect("root") as root:
            with trace.span("a"):
                with trace.span("needle"):
                    pass
        assert root.find("needle") is root.children["a"].children["needle"]
        assert root.find("missing") is None


class TestEnableDisable:
    def test_disabled_span_is_the_shared_noop(self):
        assert trace.span("x") is trace.span("y") is trace._NOOP

    def test_disabled_spans_record_nothing(self):
        with trace.span("ghost"):
            pass
        assert trace.current_root().children == {}

    def test_collect_restores_prior_disabled_state(self):
        assert not trace.ENABLED
        with trace.collect("run"):
            assert trace.ENABLED
        assert not trace.ENABLED

    def test_collect_keep_enabled(self):
        with trace.collect("run", keep_enabled=True):
            pass
        assert trace.ENABLED

    def test_collect_restores_prior_enabled_state(self):
        trace.enable()
        with trace.collect("run"):
            pass
        assert trace.ENABLED

    def test_collect_stamps_root_wall_on_exception(self):
        with pytest.raises(RuntimeError):
            with trace.collect("run") as root:
                time.sleep(0.002)
                raise RuntimeError("die")
        assert root.count == 1
        assert root.total_s >= 0.001
        assert not trace.ENABLED


class TestThreadIsolation:
    def test_threads_trace_into_independent_trees(self):
        trace.enable()
        roots = {}

        def work(name):
            root = trace.reset(name)
            with trace.span(name):
                pass
            roots[name] = root

        threads = [threading.Thread(target=work, args=(f"t{i}",))
                   for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for i in range(4):
            assert list(roots[f"t{i}"].children) == [f"t{i}"]
        # The main thread's tree never saw any of it.
        assert trace.current_root().children == {}


class TestTimedDecorator:
    def test_timed_traces_calls_when_enabled(self):
        @trace.timed("fn")
        def fn(x):
            return x + 1

        assert fn(1) == 2  # disabled: plain passthrough
        assert trace.current_root().children == {}
        with trace.collect("root") as root:
            assert fn(2) == 3
        assert root.children["fn"].count == 1
        assert fn.__wrapped__(0) == 1


class TestTraceReport:
    def _report(self):
        registry = MetricsRegistry()
        registry.counter("demo.hits").inc(3)
        registry.histogram("demo.wall_s").observe(0.25)
        with trace.collect("fig6") as root:
            with trace.span("link.tx"):
                pass
            with trace.span("link.afe"):
                time.sleep(0.002)
        return TraceReport.from_run("fig6", root, registry.snapshot())

    def test_from_run_captures_stage_walls(self):
        report = self._report()
        assert set(report.stage_walls) == {"link.tx", "link.afe"}
        assert report.wall_s == report.root.total_s

    def test_json_round_trip(self):
        report = self._report()
        text = report.to_json()
        assert TRACE_FORMAT in text
        back = TraceReport.from_json(text)
        assert back.experiment == "fig6"
        assert back.root.name == "fig6"
        assert set(back.root.children) == {"link.tx", "link.afe"}
        assert back.root.total_s == pytest.approx(report.root.total_s)
        assert back.stage_walls == pytest.approx(report.stage_walls)
        assert back.metrics.counters == {"demo.hits": 3}
        assert back.metrics.histograms["demo.wall_s"].count == 1

    def test_from_json_rejects_foreign_payloads(self):
        from repro.core import serialization

        text = serialization.dump_tagged(TRACE_FORMAT, {"not": "a report"})
        with pytest.raises(ValueError, match="TraceReport"):
            TraceReport.from_json(text)

    def test_render_trace_shows_counts_and_coverage(self):
        report = self._report()
        out = render_trace(report.root, title="trace: fig6")
        assert out.startswith("trace: fig6")
        assert "link.afe" in out and "ms" in out
        assert "coverage:" in out and "explained by" in out
