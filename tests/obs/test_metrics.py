"""The metrics registry (repro.obs.metrics).

Contracts under test: get-or-create identity per name, reset-in-place
keeps module-cached handles live, log-spaced histogram bucketing, and
snapshot merge/serialization semantics.
"""

import math

import pytest

from repro.core import serialization
from repro.obs.metrics import (
    Histogram,
    HistogramState,
    MetricsRegistry,
    MetricsSnapshot,
    default_bounds,
)


class TestRegistry:
    def test_get_or_create_returns_the_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.histogram("h") is reg.histogram("h")

    def test_reset_zeroes_in_place_keeping_handles_live(self):
        """The whole point of reset(): call sites cache handles at
        import time; a reset must zero those exact objects, not
        replace them."""
        reg = MetricsRegistry()
        counter = reg.counter("hits")
        gauge = reg.gauge("level")
        hist = reg.histogram("wall")
        counter.inc(5)
        gauge.set(2.5)
        hist.observe(0.1)
        reg.reset()
        assert counter.value == 0 and gauge.value == 0.0
        assert hist.count == 0 and hist.total == 0.0
        # The cached handles are still the registered instruments.
        assert reg.counter("hits") is counter
        counter.inc()
        assert reg.counter_values() == {"hits": 1}

    def test_counter_values_drops_zeros_and_sorts(self):
        reg = MetricsRegistry()
        reg.counter("z.late").inc(2)
        reg.counter("a.early").inc(1)
        reg.counter("m.zero")
        assert list(reg.counter_values().items()) == [
            ("a.early", 1), ("z.late", 2)]

    def test_snapshot_skips_silent_instruments(self):
        reg = MetricsRegistry()
        reg.counter("quiet")
        reg.gauge("flat")
        reg.histogram("empty")
        snap = reg.snapshot()
        assert snap.counters == {}
        assert snap.gauges == {}
        assert snap.histograms == {}


class TestHistogram:
    def test_default_bounds_are_log_spaced_decade_thirds(self):
        bounds = default_bounds()
        assert len(bounds) == 28
        assert bounds[0] == pytest.approx(1e-6)
        assert bounds[-1] == pytest.approx(1e3)
        ratios = [b / a for a, b in zip(bounds, bounds[1:])]
        assert all(r == pytest.approx(10.0 ** (1 / 3.0))
                   for r in ratios)

    def test_bucketing_boundaries(self):
        hist = Histogram("h", bounds=(1.0, 10.0))
        hist.observe(0.5)    # first bucket (<= 1.0)
        hist.observe(1.0)    # exactly on an edge: still first bucket
        hist.observe(5.0)    # second bucket
        hist.observe(100.0)  # overflow bucket
        assert hist.counts == [2, 1, 1]
        assert hist.count == 4
        assert hist.min == 0.5 and hist.max == 100.0
        assert hist.mean() == pytest.approx((0.5 + 1 + 5 + 100) / 4)

    def test_empty_histogram_mean_and_state(self):
        hist = Histogram("h")
        assert hist.mean() is None
        state = hist.state()
        assert state.count == 0
        assert state.min is None and state.max is None

    def test_reset_clears_extrema(self):
        hist = Histogram("h")
        hist.observe(3.0)
        hist.reset()
        assert hist.min == math.inf and hist.max == -math.inf
        hist.observe(1.0)
        assert hist.min == hist.max == 1.0


class TestSnapshotMerge:
    def test_counters_sum_and_gauges_last_win(self):
        a = MetricsSnapshot(counters={"x": 2, "only_a": 1},
                            gauges={"g": 1.0})
        b = MetricsSnapshot(counters={"x": 3, "only_b": 4},
                            gauges={"g": 9.0})
        merged = a.merge(b)
        assert merged.counters == {"x": 5, "only_a": 1, "only_b": 4}
        assert merged.gauges == {"g": 9.0}
        # merge() is pure: the inputs are untouched.
        assert a.counters == {"x": 2, "only_a": 1}

    def test_histograms_merge_bucket_wise(self):
        def snap(values):
            reg = MetricsRegistry()
            h = reg.histogram("wall", bounds=(1.0, 10.0))
            for v in values:
                h.observe(v)
            return reg.snapshot()

        merged = snap([0.5, 5.0]).merge(snap([20.0, 0.1]))
        state = merged.histograms["wall"]
        assert state.counts == [2, 1, 1] and state.count == 4
        assert state.min == 0.1 and state.max == 20.0
        assert state.total == pytest.approx(25.6)

    def test_histogram_merge_rejects_mismatched_bounds(self):
        a = MetricsSnapshot(histograms={"h": HistogramState(
            bounds=[1.0], counts=[1, 0], count=1, total=0.5)})
        b = MetricsSnapshot(histograms={"h": HistogramState(
            bounds=[2.0], counts=[1, 0], count=1, total=0.5)})
        with pytest.raises(ValueError, match="bounds differ"):
            a.merge(b)

    def test_one_sided_histograms_adopt_the_other_side(self):
        a = MetricsSnapshot()
        b = MetricsSnapshot(histograms={"h": HistogramState(
            bounds=[1.0], counts=[2, 0], count=2, total=0.7,
            min=0.1, max=0.6)})
        merged = a.merge(b)
        assert merged.histograms["h"].count == 2
        # Deep-copied, not aliased.
        merged.histograms["h"].counts[0] = 99
        assert b.histograms["h"].counts[0] == 2

    def test_snapshot_round_trips_through_serialization(self):
        reg = MetricsRegistry()
        reg.counter("campaign.store.hits").inc(7)
        reg.gauge("queue.depth").set(3.0)
        reg.histogram("scenario.wall_s").observe(0.02)
        snap = reg.snapshot()
        back = serialization.from_jsonable(serialization.to_jsonable(snap))
        assert isinstance(back, MetricsSnapshot)
        assert back.counters == snap.counters
        assert back.gauges == snap.gauges
        state = back.histograms["scenario.wall_s"]
        assert state.count == 1
        assert state.total == pytest.approx(0.02)
        # A merged round-tripped snapshot still behaves.
        assert back.merge(snap).counters["campaign.store.hits"] == 14
