#!/usr/bin/env python3
"""Link study: figure-6 BER curves and the noise-shaping ablation.

Run:  python examples/ber_study.py [--full]

``REPRO_SMOKE=1`` shrinks the grids so CI can smoke-test the script
in seconds.
"""

import os
import sys

from repro.experiments import run_fig6, run_noise_shaping_ablation

SMOKE = os.environ.get("REPRO_SMOKE") == "1"


def main() -> None:
    quick = "--full" not in sys.argv

    fig6_kwargs = {}
    shaping_kwargs = {}
    if SMOKE:
        fig6_kwargs["ebn0_grid"] = (0, 6, 12)
        shaping_kwargs["fp2_grid"] = (1e9, 6e9)

    fig6 = run_fig6(quick=quick, **fig6_kwargs)
    print(fig6.format_report())
    print()

    shaping = run_noise_shaping_ablation(quick=quick, **shaping_kwargs)
    print(shaping.format_report())


if __name__ == "__main__":
    main()
