#!/usr/bin/env python3
"""Link study: figure-6 BER curves and the noise-shaping ablation.

Run:  python examples/ber_study.py [--full]
"""

import sys

from repro.experiments import run_fig6, run_noise_shaping_ablation


def main() -> None:
    quick = "--full" not in sys.argv

    fig6 = run_fig6(quick=quick)
    print(fig6.format_report())
    print()

    shaping = run_noise_shaping_ablation(quick=quick)
    print(shaping.format_report())


if __name__ == "__main__":
    main()
