#!/usr/bin/env python3
"""Localization study: table 2 and the two-stage AGC fix.

Reproduces the paper's two-way-ranging experiment at 9.9 m over the
TG4a CM1 LOS channel with the ideal and circuit integrators, then shows
how the proposed two-stage AGC removes the compression-induced offset.

Run:  python examples/ranging_study.py [distance_m]

``REPRO_SMOKE=1`` shrinks the iteration counts so CI can smoke-test
the script in seconds.
"""

import os
import sys

import numpy as np

from repro.experiments import run_agc_ablation, run_table2
from repro.experiments.table2_twr import TWR_NOISE_SIGMA, twr_spec
from repro.link import ops

SMOKE = os.environ.get("REPRO_SMOKE") == "1"


def main() -> None:
    distance = float(sys.argv[1]) if len(sys.argv) > 1 else 9.9

    table2 = run_table2(distance=distance,
                        iterations=3 if SMOKE else 10, seed=42)
    print(table2.format_report())
    print()

    ablation = run_agc_ablation(distance=distance,
                                iterations=2 if SMOKE else 8, seed=42)
    print(ablation.format_report())
    print()

    # Distance sweep with the ideal integrator: ranging degrades
    # gracefully with path loss.  Each point is the same LinkSpec with
    # only the channel distance changed.
    print("Distance sweep (ideal integrator):")
    for d in (3.0, 9.9) if SMOKE else (3.0, 6.0, 9.9):
        spec = twr_spec(d, integrator="ideal")
        res = ops.ranging(spec, 2 if SMOKE else 6,
                          np.random.default_rng(1),
                          noise_sigma=TWR_NOISE_SIGMA)
        print(f"  {d:5.1f} m -> mean {res.mean:6.2f} m, "
              f"std {res.std:5.2f} m")


if __name__ == "__main__":
    main()
