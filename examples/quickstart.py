#!/usr/bin/env python3
"""Quickstart: the methodology in five minutes.

1. Build the paper's 31-transistor Integrate & Dump circuit.
2. Characterize it (figure 4): DC gain + two poles.
3. Auto-extract the Phase-IV behavioral model, including the measured
   input nonlinearity (the part the paper's hand-written model missed).
4. Compare a small BER sweep with the ideal and circuit-derived models.

Run:  python examples/quickstart.py

``REPRO_SMOKE=1`` shrinks the BER sweep so CI can smoke-test the
script in seconds.
"""

import os

import numpy as np

from repro.circuits import build_integrate_dump, count_transistors
from repro.core.characterize import build_surrogate, characterize_integrator
from repro.link import FastsimBackend, LinkSpec

SMOKE = os.environ.get("REPRO_SMOKE") == "1"


def main() -> None:
    # --- 1. the transistor-level circuit -----------------------------
    subckt = build_integrate_dump()
    print(f"Integrate & Dump netlist: {count_transistors(subckt.circuit)} "
          f"transistors, ports {', '.join(subckt.ports)}")

    # --- 2. figure-4 characterization ---------------------------------
    fit, _freqs, _mag = characterize_integrator()
    print(f"AC fit: gain {fit.gain_db:.2f} dB, poles "
          f"{fit.fp1_hz / 1e6:.2f} MHz / {fit.fp2_hz / 1e9:.2f} GHz "
          f"(paper: 21 dB, 0.886 MHz, 5.895 GHz)")

    # --- 3. automated Phase IV ----------------------------------------
    surrogate = build_surrogate()
    print(f"Extracted circuit surrogate: {surrogate.describe()}")

    # --- 4. BER comparison --------------------------------------------
    # One front door: the link is declared once as a LinkSpec and the
    # backend swaps integrator models (substitute-and-play).  The
    # extracted surrogate overrides the registry's analytic circuit
    # model.
    grid = [4.0, 8.0] if SMOKE else [4.0, 8.0, 12.0]
    budget = (dict(target_errors=20, max_bits=4_000, min_bits=1_000)
              if SMOKE else
              dict(target_errors=40, max_bits=20_000, min_bits=2_000))
    backend = FastsimBackend()
    spec = LinkSpec(integrator="ideal")
    ideal = backend.ber_curve(spec, grid, np.random.default_rng(1),
                              label="ideal", **budget)
    circuit = backend.ber_curve(spec.with_(integrator="circuit"), grid,
                                np.random.default_rng(1),
                                integrator=surrogate, label="circuit",
                                **budget)
    print(f"{'Eb/N0':>7s} {'ideal':>10s} {'circuit':>10s}")
    for e, a, b in zip(grid, ideal.ber, circuit.ber):
        print(f"{e:>7.1f} {a:>10.4f} {b:>10.4f}")


if __name__ == "__main__":
    main()
