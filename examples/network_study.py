#!/usr/bin/env python3
"""Network study: multi-user interference and near-far over NetworkSpec.

Run:  python examples/network_study.py [--full]

Builds a victim link plus interferers declaratively, runs one curve by
hand through the fastsim backend, then the packaged ``mui`` study
(interferer-count sweep + near-far) through the campaign harness.

``REPRO_SMOKE=1`` shrinks the grids so CI can smoke-test the script
in seconds.
"""

import os
import sys

import numpy as np

from repro.experiments import default_victim, run_mui
from repro.link import (
    FastsimBackend,
    InterfererSpec,
    NetworkSpec,
)

SMOKE = os.environ.get("REPRO_SMOKE") == "1"


def main() -> None:
    quick = "--full" not in sys.argv

    # One network, by hand: the victim of the fig6 conventions plus a
    # single equal-power interferer offset by 0.41 slots.
    victim = default_victim()
    network = NetworkSpec(victim=victim, interferers=(
        InterfererSpec(rel_power_db=0.0,
                       timing_offset=0.41 * victim.config.slot),))
    grid = (6.0, 14.0) if SMOKE else (2.0, 6.0, 10.0, 14.0)
    budget = dict(target_errors=40, max_bits=8_000, min_bits=2_000) \
        if SMOKE else {}
    backend = FastsimBackend()
    clean = backend.ber_curve(NetworkSpec(victim=victim), grid,
                              np.random.default_rng(7),
                              label="victim alone", **budget)
    jammed = backend.ber_curve(network, grid, np.random.default_rng(7),
                               label="one 0dB interferer", **budget)
    print("Single network - victim vs one equal-power interferer")
    print(clean.format_table())
    print()
    print(jammed.format_table())
    print()

    # The packaged study: count sweep + near-far through the campaign
    # layer.
    mui_kwargs = {}
    if SMOKE:
        mui_kwargs = dict(ebn0_grid=(6.0, 14.0), counts=(0, 1, 2),
                          sir_grid=(0.0,),
                          near_far_distances=(3.0, 9.9),
                          budget=budget)
    result = run_mui(quick=quick, **mui_kwargs)
    print(result.format_report())


if __name__ == "__main__":
    main()
