#!/usr/bin/env python3
"""Drive the circuit simulator directly: netlists, OP, AC, transient.

Shows the ELDO-substitute engine as a standalone tool: a textual Spice
netlist of a two-stage amplifier is parsed, biased, swept and
transient-simulated; then the paper's I&D testbench is probed.

Run:  python examples/circuit_playground.py

``REPRO_SMOKE=1`` shortens the sweeps so CI can smoke-test the script
in seconds.
"""

import os

import numpy as np

from repro.circuits import build_id_testbench
from repro.core.characterize import ID_OP_GUESS
from repro.spice import (
    ac_analysis,
    operating_point,
    parse_netlist,
    transient,
)
from repro.spice.analysis.ac import logspace_freqs
from repro.spice.library import GENERIC_018_CARDS

AMP_NETLIST = """common-source stage + follower demo
{cards}
.param rload=10k
vdd vdd 0 1.8
vin in 0 dc 0.9 ac 1
r1 vdd d1 {{rload}}
m1 d1 in 0 0 nch w=2u l=0.5u
m2 vdd d1 out 0 nch w=8u l=0.5u
r2 out 0 {{rload/2}}
c1 out 0 0.5p
""".format(cards=GENERIC_018_CARDS)


def main() -> None:
    ckt = parse_netlist(AMP_NETLIST)
    op = operating_point(ckt)
    print("Two-stage amplifier bias:")
    for name, info in op.mos_info().items():
        region = {0: "cutoff", 1: "triode", 2: "saturation"}[info["region"]]
        print(f"  {name}: id={info['ids'] * 1e6:7.1f} uA  "
              f"gm={info['gm'] * 1e3:6.3f} mS  {region}")

    smoke = os.environ.get("REPRO_SMOKE") == "1"
    freqs = logspace_freqs(1e3, 10e9, 3 if smoke else 6)
    ac = ac_analysis(ckt, freqs, op=op)
    gain = ac.mag_db("out")
    print(f"  midband gain: {gain.max():.1f} dB; "
          f"gain at 1 GHz: {np.interp(9.0, np.log10(freqs), gain):.1f} dB")

    # The paper's I&D testbench, step response through the Spice engine.
    t_stop = 10e-9 if smoke else 40e-9
    tb = build_id_testbench(diff_dc=0.03)
    res = transient(tb, t_stop, 0.2e-9, probes=["out_intp", "out_intm"],
                    initial_guess=ID_OP_GUESS)
    vd = res.vdiff("out_intp", "out_intm")
    print(f"\nI&D integrating 30 mV for {t_stop * 1e9:.0f} ns -> "
          f"{vd[-1] * 1e3:.1f} mV "
          f"(slope {vd[-1] / t_stop / 0.03 / 1e6:.1f} V/V/us)")


if __name__ == "__main__":
    main()
