#!/usr/bin/env python3
"""The four-phase refinement flow on the UWB receiver testbench.

Registers the integrator's Phase II / III / IV implementations in a
:class:`repro.core.RefinementFlow`, runs the *same* system testbench
under each binding (substitute-and-play), and prints the system metric
(demodulated bits) plus the Table-1-style CPU account.

Run:  python examples/methodology_flow.py
``REPRO_SMOKE=1`` shrinks the simulated burst so CI can smoke-test
the script in seconds.
"""

import os

import numpy as np

from repro.core import Phase, RefinementFlow
from repro.core.metrics import CpuTimeReport
from repro.link import LinkSpec, build_bpf, ops
from repro.uwb import UwbConfig
from repro.uwb.integrator import IdealIntegrator, TwoPoleIntegrator
from repro.uwb.modulation import ppm_waveform, random_bits


SMOKE = os.environ.get("REPRO_SMOKE") == "1"


def main() -> None:
    config = UwbConfig()
    spec = LinkSpec(config=config)
    rng = np.random.default_rng(3)
    tx_bits = random_bits(6 if SMOKE else 12, rng)
    wave = ppm_waveform(tx_bits, config)
    wave = wave + rng.normal(0.0, 0.02, len(wave))
    sig = build_bpf(spec)(wave)
    sig = 0.25 * sig / np.max(np.abs(sig))

    def testbench(impls):
        # The flow's chosen implementation substitutes into the spec's
        # slot - the registry override of the one front door.
        return ops.run_testbench(spec, sig,
                                 integrator=impls["integrate_dump"])

    flow = RefinementFlow(testbench)
    flow.register("integrate_dump", Phase.II, IdealIntegrator,
                  description="ideal gated integrator (vo' = K vin)")
    flow.register("integrate_dump", Phase.III, lambda: "circuit",
                  description="transistor netlist co-simulation")
    flow.register("integrate_dump", Phase.IV, TwoPoleIntegrator,
                  description="two poles + DC gain")
    print(flow.registry.describe())
    print()

    report = CpuTimeReport(simulated_time=len(sig) / config.fs)
    for phase in (Phase.II, Phase.IV, Phase.III):
        outcome = flow.run(refine={"integrate_dump": phase})
        result = outcome.result
        errors = int(np.sum(result.bits != tx_bits[:len(result.bits)]))
        report.add(str(phase), result.cpu_time)
        print(f"{outcome.label():>22s}: bits={result.bits.tolist()} "
              f"errors={errors} cpu={result.cpu_time:.3f}s")
    print()
    print(report.format_table())


if __name__ == "__main__":
    main()
